package fem

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
)

// StiffnessWriter is the optional fast path of an Element: writing the
// stiffness into a caller-owned matrix lets the numeric assembly phase
// reuse one scratch matrix per worker instead of allocating the whole
// Dense chain per element.  Bar and CST implement it; elements that do
// not fall back to Stiffness.
type StiffnessWriter interface {
	StiffnessInto(m *Model, ke *linalg.Dense) error
}

// Workspace is the symbolic half of direct-stiffness assembly, retained
// across solves: the reduced sparsity Pattern of the mesh topology and a
// per-element scatter map from local (i,j) stiffness entries to flat
// positions in the CSR value array.  Building it costs one counting sort
// of the element connectivity; after that every numeric re-assembly —
// new load step, changed node coordinates, another backend row of an
// experiment table — is a scatter-add that allocates nothing.
//
// A workspace is bound to the topology it was built from: the element
// list, connectivity, and constraint set of the model must not change
// (node coordinates and materials may — they only affect values).
// Assemble returns an Assembled whose K shares the workspace's value
// buffer, so it is valid until the next Assemble/AssembleParallel call
// on the same workspace; callers that need snapshots keep one workspace
// per concurrent system.  Workspace methods are not safe for concurrent
// use.
type Workspace struct {
	m     *Model
	free  []int
	index []int
	pat   *linalg.Pattern
	asm   *Assembled
	// scat[e] maps element e's dense-local (i*nd+j) entry to its flat
	// index in K.Val, -1 where either dof is fixed.
	scat [][]int32
	ndof []int
	// bufs are the per-worker accumulation buffers of the parallel
	// numeric phase, grown lazily to the requested worker count.
	bufs [][]float64
	// scratch holds one element-stiffness scratch per worker.
	scratch []*stiffScratch
}

// stiffScratch reuses one stiffness matrix per element order for
// StiffnessWriter elements.
type stiffScratch struct {
	ke map[int]*linalg.Dense
}

// stiffness computes an element's stiffness through the allocation-free
// path when the element offers one.  The returned matrix may be a shared
// scratch: it is only valid until the next call.
func (sc *stiffScratch) stiffness(m *Model, e Element, nd int) (*linalg.Dense, error) {
	sw, ok := e.(StiffnessWriter)
	if !ok {
		return e.Stiffness(m)
	}
	ke := sc.ke[nd]
	if ke == nil {
		ke = linalg.NewDense(nd, nd)
		sc.ke[nd] = ke
	}
	if err := sw.StiffnessInto(m, ke); err != nil {
		return nil, err
	}
	return ke, nil
}

// NewWorkspace runs the symbolic assembly phase: it validates the model,
// reduces out the fixed dofs, builds the CSR sparsity pattern of the
// free-dof system with a two-pass counting sort, and records where every
// element stiffness entry scatters.  No element stiffness is evaluated —
// the symbolic phase depends on topology alone.
func NewWorkspace(m *Model) (*Workspace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	free, index := m.FreeDOFs()
	var rows, cols []int
	scat := make([][]int32, len(m.Elements))
	ndof := make([]int, len(m.Elements))
	for ei, e := range m.Elements {
		dofs := ElementDOFs(e)
		nd := len(dofs)
		ndof[ei] = nd
		s := make([]int32, nd*nd)
		for i, gi := range dofs {
			ri := index[gi]
			for j, gj := range dofs {
				rj := index[gj]
				if ri < 0 || rj < 0 {
					s[i*nd+j] = -1
					continue
				}
				// Temporarily store the coordinate index; remapped to
				// the flat value index once the pattern exists.
				s[i*nd+j] = int32(len(rows))
				rows = append(rows, ri)
				cols = append(cols, rj)
			}
		}
		scat[ei] = s
	}
	pat, scatter, err := linalg.NewPattern(len(free), rows, cols)
	if err != nil {
		return nil, err
	}
	for _, s := range scat {
		for t, v := range s {
			if v >= 0 {
				s[t] = int32(scatter[v])
			}
		}
	}
	ws := &Workspace{m: m, free: free, index: index, pat: pat, scat: scat, ndof: ndof}
	ws.asm = &Assembled{K: pat.NewCSR(), Free: free, Index: index}
	return ws, nil
}

// Pattern returns the reduced system's sparsity pattern.
func (ws *Workspace) Pattern() *linalg.Pattern { return ws.pat }

// Model returns the model the workspace was built from.
func (ws *Workspace) Model() *Model { return ws.m }

// Assemble runs the numeric phase sequentially: element stiffnesses are
// re-evaluated and scatter-added through the cached map.  The returned
// Assembled shares the workspace's value storage; see the type comment.
func (ws *Workspace) Assemble() (*Assembled, error) { return ws.AssembleParallel(1) }

// AssembleParallel runs the numeric phase with the given worker count
// (values below 2 run sequentially; the count is capped at the element
// count).  Workers scatter contiguous element ranges into private
// accumulation buffers, which are then merged in worker order — a
// deterministic reduction, so repeated parallel assemblies of one system
// are bit-identical for a fixed worker count.  The count is taken as
// given rather than clamped to GOMAXPROCS: results do not depend on it,
// and benchmarks sweep it explicitly.
func (ws *Workspace) AssembleParallel(workers int) (*Assembled, error) {
	k := ws.asm.K
	val := k.Val
	for i := range val {
		val[i] = 0
	}
	ws.asm.Stats = linalg.Stats{}
	if workers > len(ws.m.Elements) {
		workers = len(ws.m.Elements)
	}
	if workers <= 1 {
		flops, err := ws.scatterRange(0, len(ws.m.Elements), val, ws.scratchFor(1)[0])
		if err != nil {
			return nil, err
		}
		ws.asm.Stats.Flops = flops
		return ws.asm, nil
	}
	bufs := ws.bufsFor(workers, len(val))
	scratch := ws.scratchFor(workers)
	ne := len(ws.m.Elements)
	errs := make([]error, workers)
	flops := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*ne/workers, (w+1)*ne/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			flops[w], errs[w] = ws.scatterRange(lo, hi, bufs[w], scratch[w])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for w := 0; w < workers; w++ {
		buf := bufs[w]
		for i, v := range buf {
			val[i] += v
		}
		ws.asm.Stats.Flops += flops[w]
	}
	return ws.asm, nil
}

// scatterRange evaluates and scatters elements [lo,hi) into val.
func (ws *Workspace) scatterRange(lo, hi int, val []float64, sc *stiffScratch) (int64, error) {
	var flops int64
	for ei := lo; ei < hi; ei++ {
		e := ws.m.Elements[ei]
		nd := ws.ndof[ei]
		ke, err := sc.stiffness(ws.m, e, nd)
		if err != nil {
			return flops, fmt.Errorf("fem: element %d: %w", ei, err)
		}
		if ke.Rows != nd || ke.Cols != nd {
			return flops, fmt.Errorf("fem: element %d stiffness %dx%d for %d dofs", ei, ke.Rows, ke.Cols, nd)
		}
		s := ws.scat[ei]
		for i := 0; i < nd; i++ {
			row := ke.Row(i)
			base := i * nd
			for j, v := range row {
				if t := s[base+j]; t >= 0 {
					val[t] += v
					flops++
				}
			}
		}
	}
	return flops, nil
}

// bufsFor returns w zeroed accumulation buffers of length n, reusing
// prior allocations where possible.
func (ws *Workspace) bufsFor(w, n int) [][]float64 {
	for len(ws.bufs) < w {
		ws.bufs = append(ws.bufs, make([]float64, n))
	}
	for i := 0; i < w; i++ {
		if len(ws.bufs[i]) != n {
			ws.bufs[i] = make([]float64, n)
			continue
		}
		buf := ws.bufs[i]
		for j := range buf {
			buf[j] = 0
		}
	}
	return ws.bufs[:w]
}

// scratchFor returns w element-stiffness scratches.
func (ws *Workspace) scratchFor(w int) []*stiffScratch {
	for len(ws.scratch) < w {
		ws.scratch = append(ws.scratch, &stiffScratch{ke: map[int]*linalg.Dense{}})
	}
	return ws.scratch[:w]
}
