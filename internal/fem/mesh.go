package fem

import (
	"fmt"
	"math/rand"
)

// RectGridOpts parameterises the rectangular plane-stress grid generator
// — the AUVM "generate grid" operation.
type RectGridOpts struct {
	// NX, NY count the cells in each direction; the grid has
	// (NX+1)*(NY+1) nodes and 2*NX*NY CST elements.
	NX, NY int
	// W, H give the physical extent.
	W, H float64
	// Mat is applied to every element.
	Mat Material
	// ClampLeft fixes both freedoms of every node on the x=0 edge (the
	// classical cantilever root).
	ClampLeft bool
	// Jitter perturbs interior node positions by up to Jitter times
	// the cell size, producing the irregular meshes that give rise to
	// irregular communication patterns.  0 disables; requires Seed.
	Jitter float64
	// Seed drives the jitter deterministically.
	Seed int64
}

// RectGrid builds a rectangular plane-stress model: NX×NY cells, each
// split into two counterclockwise CSTs.
func RectGrid(name string, o RectGridOpts) (*Model, error) {
	if o.NX < 1 || o.NY < 1 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrModel, o.NX, o.NY)
	}
	if o.W <= 0 || o.H <= 0 {
		return nil, fmt.Errorf("%w: grid extent %gx%g", ErrModel, o.W, o.H)
	}
	m := NewModel(name)
	dx, dy := o.W/float64(o.NX), o.H/float64(o.NY)
	rng := rand.New(rand.NewSource(o.Seed))
	id := func(i, j int) int { return i*(o.NY+1) + j }
	for i := 0; i <= o.NX; i++ {
		for j := 0; j <= o.NY; j++ {
			x, y := float64(i)*dx, float64(j)*dy
			if o.Jitter > 0 && i > 0 && i < o.NX && j > 0 && j < o.NY {
				x += (rng.Float64()*2 - 1) * o.Jitter * dx
				y += (rng.Float64()*2 - 1) * o.Jitter * dy
			}
			m.AddNode(x, y)
		}
	}
	for i := 0; i < o.NX; i++ {
		for j := 0; j < o.NY; j++ {
			n00 := id(i, j)
			n10 := id(i+1, j)
			n01 := id(i, j+1)
			n11 := id(i+1, j+1)
			if err := m.AddElement(&CST{N1: n00, N2: n10, N3: n11, Mat: o.Mat}); err != nil {
				return nil, err
			}
			if err := m.AddElement(&CST{N1: n00, N2: n11, N3: n01, Mat: o.Mat}); err != nil {
				return nil, err
			}
		}
	}
	if o.ClampLeft {
		for j := 0; j <= o.NY; j++ {
			if err := m.FixNode(id(0, j)); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// GridNodeID returns the node index of grid position (i,j) for a model
// built by RectGrid with NY cells vertically.
func GridNodeID(ny, i, j int) int { return i*(ny+1) + j }

// EndLoad builds a load set applying a total force (fx, fy) spread evenly
// over the right edge (x = W) nodes of a RectGrid model.
func EndLoad(name string, o RectGridOpts, fx, fy float64) *LoadSet {
	n := o.NY + 1
	ls := &LoadSet{Name: name}
	for j := 0; j <= o.NY; j++ {
		node := GridNodeID(o.NY, o.NX, j)
		ls.Entries = append(ls.Entries,
			LoadEntry{DOF: DOF(node, 0), Value: fx / float64(n)},
			LoadEntry{DOF: DOF(node, 1), Value: fy / float64(n)},
		)
	}
	return ls
}

// CantileverTruss builds a classic triangulated cantilever truss of
// `bays` bays: two chords of nodes connected by verticals and diagonals,
// pinned at the left end.  A standard small-structures workload with
// closed-form member forces for single bays.
func CantileverTruss(name string, bays int, bayLen, height float64, mat Material) (*Model, error) {
	if bays < 1 {
		return nil, fmt.Errorf("%w: truss with %d bays", ErrModel, bays)
	}
	m := NewModel(name)
	// Bottom chord nodes 0..bays, top chord nodes bays+1..2*bays+1.
	for i := 0; i <= bays; i++ {
		m.AddNode(float64(i)*bayLen, 0)
	}
	for i := 0; i <= bays; i++ {
		m.AddNode(float64(i)*bayLen, height)
	}
	bot := func(i int) int { return i }
	top := func(i int) int { return bays + 1 + i }
	add := func(a, b int) error {
		return m.AddElement(&Bar{N1: a, N2: b, Mat: mat})
	}
	for i := 0; i < bays; i++ {
		if err := add(bot(i), bot(i+1)); err != nil {
			return nil, err
		}
		if err := add(top(i), top(i+1)); err != nil {
			return nil, err
		}
		if err := add(bot(i), top(i+1)); err != nil { // diagonal
			return nil, err
		}
		if err := add(bot(i+1), top(i+1)); err != nil { // vertical
			return nil, err
		}
	}
	if err := add(bot(0), top(0)); err != nil {
		return nil, err
	}
	// Pin the left end: both chord root nodes.
	if err := m.FixNode(bot(0)); err != nil {
		return nil, err
	}
	if err := m.FixNode(top(0)); err != nil {
		return nil, err
	}
	return m, nil
}

// TipLoad builds a load set with a single downward force at the free-end
// bottom node of a CantileverTruss.
func TipLoad(name string, bays int, f float64) *LoadSet {
	return &LoadSet{Name: name, Entries: []LoadEntry{
		{DOF: DOF(bays, 1), Value: -f},
	}}
}

// UniaxialBar builds the textbook verification model: a chain of n bar
// elements along the x axis, clamped at node 0, so that a tip load P
// yields the exact solution u(i) = P·x_i/(E·A).
func UniaxialBar(name string, n int, length float64, mat Material) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: bar chain of %d", ErrModel, n)
	}
	m := NewModel(name)
	dx := length / float64(n)
	for i := 0; i <= n; i++ {
		m.AddNode(float64(i)*dx, 0)
	}
	for i := 0; i < n; i++ {
		if err := m.AddElement(&Bar{N1: i, N2: i + 1, Mat: mat}); err != nil {
			return nil, err
		}
	}
	if err := m.FixNode(0); err != nil {
		return nil, err
	}
	// The y freedoms carry no stiffness for a horizontal chain; fix
	// them all to keep the reduced system positive definite.
	for i := 1; i <= n; i++ {
		if err := m.FixDOF(DOF(i, 1)); err != nil {
			return nil, err
		}
	}
	return m, nil
}
