package fem

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/errs"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
)

// solveRuntime builds a small simulated machine for distributed-solve
// tests.
func solveRuntime(t *testing.T) *navm.Runtime {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 4
	rt := navm.NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), nil)
	return rt
}

// TestSolveRoutesEveryBackendToSameAnswer drives the one solve path per
// engine on the shared fixture — the typed-API half of the acceptance
// criterion (the REPL half lives in the root package's tests).  The bar
// chain is diagonally dominant enough that even Jacobi converges.
func TestSolveRoutesEveryBackendToSameAnswer(t *testing.T) {
	m, err := UniaxialBar("chain", 12, 120, Material{E: 200000, A: 10})
	if err != nil {
		t.Fatal(err)
	}
	ls := &LoadSet{Name: "tip", Entries: []LoadEntry{{DOF: DOF(12, 0), Value: 500}}}
	ctx := context.Background()
	ref, err := Solve(ctx, m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Backend != linalg.BackendCholesky || ref.Iterations != 0 {
		t.Errorf("default solve reported %q/%d iterations", ref.Backend, ref.Iterations)
	}
	scale := linalg.NormInf(ref.U)
	cases := []SolveOpts{
		{Backend: linalg.BackendCholeskyRCM},
		{Backend: linalg.BackendCG},
		{Backend: linalg.BackendCG, Precond: linalg.PrecondJacobi},
		{Backend: linalg.BackendCG, Precond: linalg.PrecondSSOR},
		{Backend: linalg.BackendJacobi},
		{Backend: linalg.BackendSOR},
	}
	for _, opts := range cases {
		sol, err := Solve(ctx, m, ls, opts)
		if err != nil {
			t.Errorf("%s+%s: %v", opts.Backend, opts.Precond, err)
			continue
		}
		if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-6*scale {
			t.Errorf("%s+%s differs from cholesky by %g (scale %g)", opts.Backend, opts.Precond, d, scale)
		}
		if sol.Backend != opts.Backend || sol.Precond != opts.Precond {
			t.Errorf("solution reports %s+%s, want %s+%s", sol.Backend, sol.Precond, opts.Backend, opts.Precond)
		}
	}
}

func TestSolveUnknownBackend(t *testing.T) {
	m, _ := UniaxialBar("chain", 3, 30, Steel())
	ls := &LoadSet{Name: "l", Entries: []LoadEntry{{DOF: DOF(3, 0), Value: 1}}}
	if _, err := Solve(context.Background(), m, ls, SolveOpts{Backend: "gauss"}); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("unknown backend error = %v, want ErrUsage", err)
	}
	// The substructured route validates engine names too.
	if _, err := Solve(context.Background(), m, ls, SolveOpts{Backend: "gauss", Substructured: 2}); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("substructured unknown backend error = %v, want ErrUsage", err)
	}
	// A preconditioner is rejected, not silently ignored, on the
	// direct condensation route — known or unknown alike.
	for _, p := range []string{"ilu", linalg.PrecondSSOR} {
		if _, err := Solve(context.Background(), m, ls, SolveOpts{Precond: p, Substructured: 2}); !errors.Is(err, errs.ErrUsage) {
			t.Errorf("substructured precond %q error = %v, want ErrUsage", p, err)
		}
	}
}

func TestSolveParallelNeedsRuntime(t *testing.T) {
	m, _ := UniaxialBar("chain", 3, 30, Steel())
	ls := &LoadSet{Name: "l", Entries: []LoadEntry{{DOF: DOF(3, 0), Value: 1}}}
	if _, err := Solve(context.Background(), m, ls, SolveOpts{Parallel: 2}); err == nil {
		t.Error("parallel solve without a runtime accepted")
	}
}

func TestSolveParallelRejectsDirectBackend(t *testing.T) {
	m, _ := UniaxialBar("chain", 3, 30, Steel())
	ls := &LoadSet{Name: "l", Entries: []LoadEntry{{DOF: DOF(3, 0), Value: 1}}}
	opts := SolveOpts{Backend: linalg.BackendCholesky, Parallel: 2, RT: solveRuntime(t)}
	if _, err := Solve(context.Background(), m, ls, opts); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("parallel cholesky error = %v, want ErrUsage", err)
	}
}

// TestSolveParallelBackends routes the distributed variants — cg,
// jacobi, multi-colour sor — through the same unified path and checks
// they agree with the direct baseline and report machine statistics.
func TestSolveParallelBackends(t *testing.T) {
	o := RectGridOpts{NX: 6, NY: 4, W: 6, H: 4, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("par", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("tip", o, 0, -300)
	ctx := context.Background()
	ref, err := Solve(ctx, m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	scale := linalg.NormInf(ref.U)
	for _, backend := range []string{"", linalg.BackendCG, linalg.BackendSOR} {
		sol, err := Solve(ctx, m, ls, SolveOpts{Backend: backend, Parallel: 4, RT: solveRuntime(t), Tol: 1e-9})
		if err != nil {
			t.Fatalf("%q parallel: %v", backend, err)
		}
		if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-4*scale {
			t.Errorf("%q parallel differs from direct by %g (scale %g)", backend, d, scale)
		}
		if sol.Par == nil || sol.Par.Makespan == 0 || sol.Iterations == 0 {
			t.Errorf("%q parallel: stats missing: %+v", backend, sol)
		}
	}
}

// TestSolveParallelJacobiOnChain routes the distributed Jacobi variant
// (the chain is diagonally dominant, so it converges where plates do
// not).
func TestSolveParallelJacobiOnChain(t *testing.T) {
	m, err := UniaxialBar("chain", 16, 160, Material{E: 200000, A: 10})
	if err != nil {
		t.Fatal(err)
	}
	ls := &LoadSet{Name: "tip", Entries: []LoadEntry{{DOF: DOF(16, 0), Value: 500}}}
	ctx := context.Background()
	ref, err := Solve(ctx, m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendJacobi, Parallel: 4, RT: solveRuntime(t), Tol: 1e-8, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-5*linalg.NormInf(ref.U) {
		t.Errorf("parallel jacobi differs by %g", d)
	}
	if sol.Backend != linalg.BackendJacobi || sol.Par == nil {
		t.Errorf("solution reports %q, Par=%v", sol.Backend, sol.Par)
	}
}

// TestSolveSequentialCancelMidIteration is the regression test for the
// ctx-cancellation gap: cancelling during the iteration loop stops the
// solve with errs.ErrCancelled instead of running to completion.
func TestSolveSequentialCancelMidIteration(t *testing.T) {
	o := RectGridOpts{NX: 10, NY: 8, W: 10, H: 8, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("cancel", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("tip", o, 0, -100)
	ctx, cancel := context.WithCancel(context.Background())
	opts := SolveOpts{Backend: linalg.BackendCG, Tol: 1e-14,
		OnIteration: func(iter int, _ float64) {
			if iter == 1 {
				cancel()
			}
		}}
	_, err = Solve(ctx, m, ls, opts)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("cancelled sequential solve returned %v, want ErrCancelled", err)
	}
}

// TestSolveParallelCancelMidIteration covers the distributed path: the
// NAVM iteration loop polls the same ctx.
func TestSolveParallelCancelMidIteration(t *testing.T) {
	o := RectGridOpts{NX: 10, NY: 8, W: 10, H: 8, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("cancel-par", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("tip", o, 0, -100)
	ctx, cancel := context.WithCancel(context.Background())
	opts := SolveOpts{Parallel: 4, RT: solveRuntime(t), Tol: 1e-14,
		OnIteration: func(iter int, _ float64) {
			if iter == 1 {
				cancel()
			}
		}}
	_, err = Solve(ctx, m, ls, opts)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("cancelled parallel solve returned %v, want ErrCancelled", err)
	}
}

func TestSolveSubstructuredCancelled(t *testing.T) {
	o := RectGridOpts{NX: 8, NY: 4, W: 8, H: 4, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("cancel-sub", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("tip", o, 0, -100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, m, ls, SolveOpts{Substructured: 4}); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("cancelled substructured solve returned %v, want ErrCancelled", err)
	}
}

// TestSolveSubstructuredThroughUnifiedPath checks the third route of the
// one solve entry point.
func TestSolveSubstructuredThroughUnifiedPath(t *testing.T) {
	o := RectGridOpts{NX: 8, NY: 4, W: 8, H: 4, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("sub-route", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("tip", o, 0, -100)
	ctx := context.Background()
	ref, err := Solve(ctx, m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(ctx, m, ls, SolveOpts{Substructured: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-8*linalg.NormInf(ref.U) {
		t.Errorf("substructured route differs by %g", d)
	}
	if sol.Backend != linalg.BackendCholesky {
		t.Errorf("substructured solution reports backend %q", sol.Backend)
	}
}
