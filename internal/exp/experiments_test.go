package exp

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as a float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q is not numeric", tab.ID, row, col, s)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "longcolumn"}, Notes: "n"}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	s := tab.String()
	for _, want := range []string{"T: demo", "longcolumn", "2.5", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestE1ShapesHold(t *testing.T) {
	tab, err := E1Requirements([]int{8, 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// flops/word ratio improves with n (computation outgrows
	// communication).
	r8 := cell(t, tab, 0, 8)
	r16 := cell(t, tab, 1, 8)
	if r16 <= r8 {
		t.Errorf("flops/word did not improve with n: %g -> %g", r8, r16)
	}
	// halo per iteration grows sub-linearly in dofs: n doubles → halo
	// roughly doubles, dofs roughly quadruple.
	h8, h16 := cell(t, tab, 0, 7), cell(t, tab, 1, 7)
	d8, d16 := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if h16/h8 >= d16/d8 {
		t.Errorf("halo growth %g not slower than dof growth %g", h16/h8, d16/d8)
	}
}

func TestE2SpeedupMonotoneAtSmallCounts(t *testing.T) {
	tab, err := E2SolverSpeedup(16, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	s1 := cell(t, tab, 0, 2)
	s8 := cell(t, tab, 2, 2)
	if s8 <= s1 {
		t.Errorf("8-worker speedup %g not above 1-worker %g", s8, s1)
	}
	// Speedup is sub-linear: less than the worker count.
	if s8 >= 8 {
		t.Errorf("speedup %g super-linear; barriers should prevent that", s8)
	}
}

func TestE3ErrorsStaySmallAndParallelismHelps(t *testing.T) {
	tab, err := E3Substructure([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if e := cell(t, tab, i, 3); e > 1e-6 {
			t.Errorf("row %d substructure error %g", i, e)
		}
	}
	m1 := cell(t, tab, 0, 1)
	m4 := cell(t, tab, 1, 1)
	if m4 >= m1 {
		t.Errorf("condensations on 4 PEs (%g) not faster than on 1 (%g)", m4, m1)
	}
	// Independent condensations spread nearly linearly.
	if s4 := cell(t, tab, 1, 2); s4 < 2 {
		t.Errorf("4-worker condensation speedup %g below 2", s4)
	}
}

func TestE4ThroughputScales(t *testing.T) {
	tab, err := E4MultiUser([]int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	tp1 := cell(t, tab, 0, 3)
	tp4 := cell(t, tab, 1, 3)
	tp8 := cell(t, tab, 2, 3)
	// Four independent users on 16 workers (4 each) overlap almost
	// perfectly.
	if tp4 < 3*tp1 {
		t.Errorf("4-user throughput %g below 3× single-user %g", tp4, tp1)
	}
	// Eight users exceed the worker pool: throughput saturates rather
	// than scaling.
	if tp8 > 1.5*tp4 {
		t.Errorf("8-user throughput %g kept scaling past saturation (4-user %g)", tp8, tp4)
	}
}

func TestE5LinearInK(t *testing.T) {
	tab, err := E5TaskInitiation([]int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if created := cell(t, tab, 0, 1); created != 10 {
		t.Errorf("created %g of 10", created)
	}
	if created := cell(t, tab, 1, 1); created != 100 {
		t.Errorf("created %g of 100", created)
	}
	// Heap words scale linearly with K.
	h10, h100 := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if h100 < 9*h10 || h100 > 11*h10 {
		t.Errorf("heap words not ~linear: %g vs %g", h10, h100)
	}
}

func TestE6RemoteBlockBeatsElementLoop(t *testing.T) {
	tab, err := E6WindowAccess()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 0 local row, 1 local element, 2 remote row, 3 remote
	// element. Compare cycles/word.
	remoteBlock := cell(t, tab, 2, 5)
	remoteElem := cell(t, tab, 3, 5)
	if remoteBlock >= remoteElem {
		t.Errorf("remote block %g cycles/word not cheaper than element loop %g", remoteBlock, remoteElem)
	}
	localRow := cell(t, tab, 0, 5)
	if localRow >= remoteBlock {
		t.Errorf("local access %g not cheaper than remote %g", localRow, remoteBlock)
	}
}

func TestE7AlwaysCompletesAndOverheadGrows(t *testing.T) {
	tab, err := E7FaultIsolation([]int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tab.Rows {
		if r[4] != "true" {
			t.Errorf("row %d residual not ok: %v", i, r)
		}
	}
	m0 := cell(t, tab, 0, 2)
	m4 := cell(t, tab, 1, 2)
	if m4 <= m0 {
		t.Errorf("4 failures (%g) not slower than none (%g)", m4, m0)
	}
}

func TestE8LevelsOrdered(t *testing.T) {
	tab, err := E8Programmability()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// User-visible operation counts grow monotonically going down the
	// stack.
	prev := -1.0
	for i := range tab.Rows {
		ops := cell(t, tab, i, 1)
		if ops <= prev {
			t.Errorf("level %s ops %g not above previous %g", tab.Rows[i][0], ops, prev)
		}
		prev = ops
	}
}

func TestE9MoreWorkersFaster(t *testing.T) {
	tab, err := E9ClusterScheduling([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	m2 := cell(t, tab, 0, 2)
	m8 := cell(t, tab, 1, 2)
	if m8 >= m2 {
		t.Errorf("8 workers (%g) not faster than 2 (%g)", m8, m2)
	}
}

func TestE10AxpyScalesBetterThanDot(t *testing.T) {
	tab, err := E10LinalgKernels([]int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	dot1, dot16 := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	axpy1, axpy16 := cell(t, tab, 0, 3), cell(t, tab, 1, 3)
	dotSpeedup := dot1 / dot16
	axpySpeedup := axpy1 / axpy16
	if axpySpeedup <= dotSpeedup {
		t.Errorf("axpy speedup %g not above dot speedup %g (dot pays the reduction)", axpySpeedup, dotSpeedup)
	}
}

func TestE11AllAcceptedAllMutantsRejected(t *testing.T) {
	tab, err := E11HGraphValidation(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 message types", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "10/10" {
			t.Errorf("%s: valid accepted %s", r[0], r[1])
		}
		if r[2] != "10/10" {
			t.Errorf("%s: mutants rejected %s", r[0], r[2])
		}
	}
}

func TestDesignIterationPrefersBiggerMachine(t *testing.T) {
	tab, err := DesignIteration()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Notes, "winner") {
		t.Errorf("notes: %q", tab.Notes)
	}
	// The single-cluster configs must not win.
	if strings.Contains(tab.Notes, "winner: 1 clusters") {
		t.Errorf("design iteration picked the smallest machine: %s", tab.Notes)
	}
}

func TestE12SolverOrdering(t *testing.T) {
	tab, err := E12SolverComparison(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cg := cell(t, tab, 0, 1)
	sor := cell(t, tab, 1, 1)
	jac := cell(t, tab, 2, 1)
	if !(cg < sor && sor < jac) {
		t.Errorf("iteration ordering violated: cg=%g sor=%g jacobi=%g", cg, sor, jac)
	}
	// CG and multi-colour SOR must converge; plain Jacobi exhausting
	// its budget on the plate is the period-accurate outcome and is
	// reported, not hidden.
	if tab.Rows[0][5] != "true" {
		t.Error("CG did not converge")
	}
	if tab.Rows[1][5] != "true" {
		t.Error("multi-colour SOR did not converge")
	}
}

func TestE13LatencyMonotone(t *testing.T) {
	tab, err := E13LatencyAblation([]int64{0, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := range tab.Rows {
		m := cell(t, tab, i, 1)
		if m <= prev {
			t.Errorf("makespan not increasing with latency at row %d: %g after %g", i, m, prev)
		}
		prev = m
	}
	// Utilization decays as latency grows.
	u0 := cell(t, tab, 0, 3)
	u800 := cell(t, tab, 2, 3)
	if u800 >= u0 {
		t.Errorf("utilization %g at 800 cycles not below %g at 0", u800, u0)
	}
}

func TestE14PatternsDiffer(t *testing.T) {
	tab, err := E14CommunicationPattern()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (two 4x4 matrices)", len(tab.Rows))
	}
	// Grid CG: traffic between distinct clusters exists and the matrix
	// is non-trivial.
	var gridTotal, subTotal float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			gridTotal += cell(t, tab, r, 2+c)
			subTotal += cell(t, tab, 4+r, 2+c)
		}
	}
	if gridTotal == 0 {
		t.Error("grid solve produced no inter-cluster traffic")
	}
	if subTotal == 0 {
		t.Error("substructure solve produced no inter-cluster traffic")
	}
	// The substructure gather is hub-shaped: one destination column
	// holds the bulk of the traffic.
	var maxCol float64
	for c := 0; c < 4; c++ {
		var col float64
		for r := 0; r < 4; r++ {
			col += cell(t, tab, 4+r, 2+c)
		}
		if col > maxCol {
			maxCol = col
		}
	}
	if maxCol < 0.5*subTotal {
		t.Errorf("substructure traffic not hub-shaped: max column %g of %g", maxCol, subTotal)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	tabs, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 17 {
		t.Fatalf("tables = %d, want 17", len(tabs))
	}
	ids := map[string]bool{}
	for _, tab := range tabs {
		ids[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Errorf("table %s empty", tab.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "DM"} {
		if !ids[want] {
			t.Errorf("missing table %s", want)
		}
	}
}

func TestE15RCMFixesShuffledMesh(t *testing.T) {
	tab, err := E15RenumberingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows: 0 grid-natural/natural, 1 grid-natural/rcm,
	//       2 grid-shuffled/natural, 3 grid-shuffled/rcm.
	shufNatBW := cell(t, tab, 2, 2)
	shufRCMBW := cell(t, tab, 3, 2)
	if shufRCMBW >= shufNatBW {
		t.Errorf("RCM bandwidth %g not below shuffled %g", shufRCMBW, shufNatBW)
	}
	shufNatFlops := cell(t, tab, 2, 3)
	shufRCMFlops := cell(t, tab, 3, 3)
	if shufRCMFlops >= shufNatFlops/2 {
		t.Errorf("RCM flops %g not well below shuffled natural %g", shufRCMFlops, shufNatFlops)
	}
	// Every solve stays correct.
	for i := range tab.Rows {
		if e := cell(t, tab, i, 4); e > 1e-7 {
			t.Errorf("row %d error %g", i, e)
		}
	}
}

// TestE16ColdWarmSplit checks the factor-once column: every direct
// backend's warm repeat solve is far cheaper than its cold solve
// (factor + solve), while iterative backends repeat at full cost.
func TestE16ColdWarmSplit(t *testing.T) {
	tab, err := E16SequentialBackends(8)
	if err != nil {
		t.Fatal(err)
	}
	direct := map[string]bool{"cholesky": true, "cholesky-rcm": true, "cholesky-env": true}
	seen := 0
	for i, row := range tab.Rows {
		cold := cell(t, tab, i, 2)
		warm := cell(t, tab, i, 3)
		if direct[row[0]] {
			seen++
			if warm >= cold/2 {
				t.Errorf("%s: warm %g Mflops not well below cold %g", row[0], warm, cold)
			}
		} else if warm != cold {
			t.Errorf("%s: warm %g differs from cold %g for an iterative backend", row[0], warm, cold)
		}
	}
	if seen != len(direct) {
		t.Errorf("found %d direct rows, want %d", seen, len(direct))
	}
}
