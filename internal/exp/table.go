// Package exp is the FEM-2 experiment harness: it regenerates, as tables,
// every evaluation the paper commits to — the simulations measuring
// storage, processing, and communication patterns of typical FEM-2
// applications, the quantitative requirement estimates of ref. [8], the
// three levels of parallelism from the conclusion, and the hardware
// requirements list (dynamic task initiation, window access, fault
// isolation, cluster scheduling, fast linear algebra).
//
// The paper itself contains no numbered tables or figures; DESIGN.md maps
// each of its textual evaluation commitments to an experiment id (E1-E11)
// and to the bench target in bench_test.go that regenerates it.
package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	// ID is the experiment identifier ("E1" ...).
	ID string
	// Title describes what the table shows.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes records the expected shape and any caveats.
	Notes string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", width[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", width[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			w := 0
			if i < len(width) {
				w = width[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
