package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/command"
	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/hgraph"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/spvm"
)

// defaultConfig is the experiment baseline machine.
func defaultConfig(clusters, pesPer int) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Clusters = clusters
	cfg.PEsPerCluster = pesPer
	return cfg
}

// plateCache memoises the assembled benchmark plate per grid size:
// experiment tables solve the same few plates dozens of times across the
// suite (every E16 backend row, every E13 latency point, ...), and with
// the symbolic/numeric assembly split the system is a pure function of
// the size — so it is assembled exactly once and shared (solvers treat
// the matrix as read-only).
var (
	plateMu    sync.Mutex
	plateCache = map[int]*plateEntry{}
)

type plateEntry struct {
	k *linalg.CSR
	b linalg.Vector
	// factors is the plate's direct-solve factor cache, shared across
	// every E-table row that direct-solves this plate — the suite's 17
	// tables factor each (plate, backend) pair once.
	factors *linalg.FactorCache
}

// plateSystem assembles (or recalls) an n×n plane-stress cantilever
// plate and its tip load — the "typical large-scale application"
// workload.  The returned matrix is shared and must be treated as
// read-only; the right-hand side is a private copy.
func plateSystem(n int) (*linalg.CSR, linalg.Vector, error) {
	plateMu.Lock()
	defer plateMu.Unlock()
	if e, ok := plateCache[n]; ok {
		return e.k, e.b.Clone(), nil
	}
	o := fem.RectGridOpts{NX: n, NY: n, W: float64(n), H: float64(n), Mat: fem.Steel(), ClampLeft: true}
	m, err := fem.RectGrid(fmt.Sprintf("plate-%d", n), o)
	if err != nil {
		return nil, nil, err
	}
	asm, err := fem.Assemble(m)
	if err != nil {
		return nil, nil, err
	}
	ls := fem.EndLoad("tip", o, 0, -1000)
	_, index := m.FreeDOFs()
	b, err := m.RHS(ls, index, len(asm.Free))
	if err != nil {
		return nil, nil, err
	}
	plateCache[n] = &plateEntry{k: asm.K, b: b, factors: &linalg.FactorCache{}}
	return asm.K, b.Clone(), nil
}

// plateFactors returns the memoised plate's shared factor cache.
func plateFactors(n int) (*linalg.FactorCache, error) {
	if _, _, err := plateSystem(n); err != nil {
		return nil, err
	}
	plateMu.Lock()
	defer plateMu.Unlock()
	return plateCache[n].factors, nil
}

// E1Requirements reproduces the Adams–Voigt style quantitative estimate:
// processing, storage, and communication requirements of a typical
// large-scale application across problem sizes.  Expected shape:
// flops grow ~O(n²·iters) while halo communication per iteration grows
// ~O(n), so the computation/communication ratio improves with n.
func E1Requirements(sizes []int, workers int) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("requirements of an n×n plane-stress solve on %d workers", workers),
		Columns: []string{"n", "dofs", "iters", "Mflops", "storage(words)",
			"msgs", "msg.words", "halo/iter", "flops/word"},
		Notes: "processing grows ~n^2 per iteration, communication ~n: the ratio improves with n",
	}
	for _, n := range sizes {
		k, b, err := plateSystem(n)
		if err != nil {
			return nil, err
		}
		cfg := defaultConfig(4, 1+workers/4+1)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		col := metrics.NewCollector()
		rt.AttachInstrumentation(col, nil)
		d, err := navm.Partition(k, b, workers)
		if err != nil {
			return nil, err
		}
		_, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N))
		if err != nil {
			return nil, err
		}
		storage := col.Get(metrics.LevelNAVM, metrics.CtrWordsAlloc)
		msgs := rt.Machine().Network().TotalMessages()
		words := rt.Machine().Network().TotalWords()
		haloPerIter := int64(0)
		if stats.Iterations > 0 {
			haloPerIter = stats.HaloWords / int64(stats.Iterations)
		}
		ratio := float64(stats.Flops) / float64(maxI64(words, 1))
		t.AddRow(n, k.N, stats.Iterations, float64(stats.Flops)/1e6,
			storage, msgs, words, haloPerIter, ratio)
	}
	return t, nil
}

// E2SolverSpeedup reproduces the equation-solution parallelism level:
// parallel CG against the sequential baselines over machine sizes.
// Expected shape: sub-linear speedup (the inner-product barriers), with
// the crossover against sequential Cholesky appearing once enough workers
// amortise the iteration count.
func E2SolverSpeedup(n int, workerCounts []int) (*Table, error) {
	k, b, err := plateSystem(n)
	if err != nil {
		return nil, err
	}
	// Sequential baselines through the solver registry, costed on a
	// single simulated PE.
	cholCycles, err := backendCycles(linalg.BackendCholesky, k, b)
	if err != nil {
		return nil, err
	}
	seqCGCycles, err := backendCycles(linalg.BackendCG, k, b)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("parallel CG speedup, %d dofs (n=%d grid)", k.N, n),
		Columns: []string{"workers", "makespan", "speedup-vs-seqCG", "speedup-vs-cholesky", "utilization"},
		Notes: fmt.Sprintf("sequential CG %d cycles, banded Cholesky %d cycles on one PE; "+
			"speedup is sub-linear because each iteration costs barriers", seqCGCycles, cholCycles),
	}
	for _, p := range workerCounts {
		clusters := (p + 3) / 4
		if clusters < 1 {
			clusters = 1
		}
		cfg := defaultConfig(clusters, 1+(p+clusters-1)/clusters)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		d, err := navm.Partition(k, b, p)
		if err != nil {
			return nil, err
		}
		_, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N))
		if err != nil {
			return nil, err
		}
		t.AddRow(p, stats.Makespan,
			float64(seqCGCycles)/float64(stats.Makespan),
			float64(cholCycles)/float64(stats.Makespan),
			rt.Machine().Utilization())
	}
	return t, nil
}

// E3Substructure reproduces the substructure-analysis parallelism level:
// a fixed decomposition into 8 substructures whose condensations fan out
// over a varying pool of worker PEs.  Expected shape: near-linear
// makespan reduction while workers ≤ substructures — condensations are
// mutually independent, so w workers carry ⌈8/w⌉ condensations each.
// (The interior blocks are factored banded, so a single condensation is
// no longer cubically expensive; the parallelism level is about
// overlapping the independent condensations, not about beating the
// direct baseline on a small plate.)
func E3Substructure(workerCounts []int) (*Table, error) {
	const subs = 8
	o := fem.RectGridOpts{NX: 24, NY: 6, W: 24, H: 6, Mat: fem.Steel(), ClampLeft: true}
	m, err := fem.RectGrid("frame", o)
	if err != nil {
		return nil, err
	}
	ls := fem.EndLoad("tip", o, 0, -2000)
	ref, err := fem.Solve(context.Background(), m, ls, fem.SolveOpts{})
	if err != nil {
		return nil, err
	}
	s, err := fem.PartitionByX(m, subs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E3",
		Title: fmt.Sprintf("condensation of %d substructures (24×6 plate, %d interface dofs) over worker PEs",
			subs, len(s.Interface)),
		Columns: []string{"workers", "makespan", "speedup", "max.error", "net.msgs"},
		Notes:   "independent condensations overlap on distinct PEs; interface solve is the serial tail",
	}
	var base int64
	for _, w := range workerCounts {
		// Exactly w live worker PEs (each cluster spends one PE on its
		// kernel): spread 4-per-cluster when w divides evenly, otherwise
		// one cluster holds them all.
		clusters, pes := 1, w+1
		if w >= 4 && w%4 == 0 {
			clusters, pes = w/4, 5
		}
		cfg := defaultConfig(clusters, pes)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		sol, err := fem.SolveSubstructured(context.Background(), m, s, ls, rt)
		if err != nil {
			return nil, err
		}
		span := rt.Machine().Makespan()
		if base == 0 {
			base = span
		}
		t.AddRow(w, span, float64(base)/float64(maxI64(span, 1)),
			linalg.MaxAbsDiff(sol.U, ref.U),
			rt.Machine().Network().TotalMessages())
	}
	return t, nil
}

// E4MultiUser reproduces the top parallelism level plus the multi-user
// hardware requirement: U independent users each solving an independent
// model on one shared machine.  Expected shape: throughput scales with
// users until workers saturate.
func E4MultiUser(userCounts []int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "independent user requests on one shared machine",
		Columns: []string{"users", "solves", "makespan", "throughput(solves/Mcycle)", "utilization"},
		Notes:   "user requests are independent problems; the machine overlaps them across clusters",
	}
	for _, u := range userCounts {
		sys, err := core.NewSystem(defaultConfig(4, 5))
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		for i := 0; i < u; i++ {
			sess := sys.Session(fmt.Sprintf("user%d", i))
			name := fmt.Sprintf("m%d", i)
			cmds := []command.Command{
				command.GenerateGrid{Name: name, NX: 8, NY: 6, W: 8, H: 6, ClampLeft: true},
				command.EndLoad{Model: name, Set: "tip", FY: -500},
				command.Solve{Model: name, Set: "tip", Parallel: 4},
			}
			for _, c := range cmds {
				if _, err := sess.Do(ctx, c); err != nil {
					return nil, err
				}
			}
		}
		span := sys.Machine.Makespan()
		t.AddRow(u, u, span, float64(u)*1e6/float64(maxI64(span, 1)), sys.Machine.Utilization())
	}
	return t, nil
}

// E5TaskInitiation reproduces the "large scale dynamic task initiation"
// hardware requirement.  Expected shape: total cost linear in K,
// dominated by the kernel PE's decode serialisation.
func E5TaskInitiation(counts []int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "dynamic initiation of K task replications",
		Columns: []string{"K", "created", "heap.words", "kernel.msgs", "makespan", "cycles/task"},
		Notes:   "initiation is kernel-bound: the cluster kernels serialise decode+allocate+enqueue",
	}
	for _, k := range counts {
		cfg := defaultConfig(4, 5)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		col := metrics.NewCollector()
		rt.AttachInstrumentation(col, nil)
		root, err := rt.NewRootTask()
		if err != nil {
			return nil, err
		}
		if err := rt.RegisterTaskType("unit", 64, 8, func(tc *navm.TaskCtx, replica int) error {
			tc.Charge(10)
			return nil
		}); err != nil {
			return nil, err
		}
		// Measure from here so code-block loading is excluded from the
		// per-task storage figure.
		baseline := col.Snapshot()
		// Initiate in batches across clusters, as a large forall
		// would.
		batch := 64
		remaining := k
		for remaining > 0 {
			n := batch
			if n > remaining {
				n = remaining
			}
			g, err := root.Initiate("unit", n, nil)
			if err != nil {
				return nil, err
			}
			if err := g.Wait(root); err != nil {
				return nil, err
			}
			remaining -= n
		}
		diff := col.Diff(baseline)
		created := diff[metrics.LevelSPVM][metrics.CtrTasksInitiated]
		heap := diff[metrics.LevelSPVM][metrics.CtrWordsAlloc]
		span := rt.Machine().Makespan()
		var decoded int64
		for _, kern := range rt.Kernels() {
			decoded += kern.Decoded()
		}
		t.AddRow(k, created, heap, decoded, span, float64(span)/float64(maxI64(int64(k), 1)))
	}
	return t, nil
}

// E6WindowAccess reproduces the "remote access to local data (through
// windows)" requirement: the cost of element, row, and block window
// reads, local vs remote.  Expected shape: remote access pays a
// per-message latency, so block windows amortise far better than
// element-at-a-time access.
func E6WindowAccess() (*Table, error) {
	cfg := defaultConfig(2, 4)
	rt := navm.NewRuntime(arch.MustNew(cfg))
	col := metrics.NewCollector()
	rt.AttachInstrumentation(col, nil)
	root, err := rt.NewRootTask()
	if err != nil {
		return nil, err
	}
	const n = 64
	a, err := root.NewArray("K", n, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("window access cost on a %d×%d array", n, n),
		Columns: []string{"pattern", "locality", "words", "accesses", "cycles", "cycles/word"},
		Notes:   "remote element reads pay the full network latency per word; block windows amortise it",
	}
	home := a.HomeCluster()
	remote := (home + 1) % cfg.Clusters
	measure := func(label, locality string, peID int, f func(tc *navm.TaskCtx) (int64, int, error)) error {
		pe := rt.Machine().PE(peID)
		start := pe.Clock()
		tc := root
		words, accesses, err := f(tc)
		if err != nil {
			return err
		}
		cycles := pe.Clock() - start
		t.AddRow(label, locality, words, accesses, cycles, float64(cycles)/float64(maxI64(words, 1)))
		return nil
	}
	// Local accesses run on the root's own PE.
	rootPE := root.PE().ID
	if err := measure("row window", "local", rootPE, func(tc *navm.TaskCtx) (int64, int, error) {
		w, err := navm.RowWindow(a, 0, 1)
		if err != nil {
			return 0, 0, err
		}
		w.Read(tc)
		return w.Words(), 1, nil
	}); err != nil {
		return nil, err
	}
	if err := measure("element loop", "local", rootPE, func(tc *navm.TaskCtx) (int64, int, error) {
		w, err := navm.RowWindow(a, 1, 1)
		if err != nil {
			return 0, 0, err
		}
		for j := 0; j < n; j++ {
			if _, err := w.ReadAt(tc, 0, j); err != nil {
				return 0, 0, err
			}
		}
		return int64(n), n, nil
	}); err != nil {
		return nil, err
	}
	// Remote accesses: run a worker pinned to the other cluster via a
	// direct PE simulation.
	remotePE, err := rt.Machine().PlaceWorkerInCluster(remote)
	if err != nil {
		return nil, err
	}
	// Block read from remote cluster.
	start := remotePE.Clock()
	rt.Machine().RemoteFetch(remotePE.ID, home, n)
	cycles := remotePE.Clock() - start
	t.AddRow("row window", "remote", n, 1, cycles, float64(cycles)/float64(n))
	// Element-at-a-time from remote cluster.
	start = remotePE.Clock()
	for j := 0; j < n; j++ {
		rt.Machine().RemoteFetch(remotePE.ID, home, 1)
	}
	cycles = remotePE.Clock() - start
	t.AddRow("element loop", "remote", n, n, cycles, float64(cycles)/float64(n))
	return t, nil
}

// E7FaultIsolation reproduces the "reconfigurability to isolate faulty
// hardware components" requirement: the same solve re-run with f failed
// PEs.  Expected shape: the solve always completes; makespan grows
// roughly with the lost compute fraction.
func E7FaultIsolation(failCounts []int) (*Table, error) {
	k, b, err := plateSystem(12)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E7",
		Title:   "solve completion under PE failures (4 clusters × 4 workers)",
		Columns: []string{"failed.PEs", "live.workers", "makespan", "overhead", "residual.ok"},
		Notes:   "the machine reroutes work around isolated PEs; overhead tracks the lost capacity",
	}
	var base int64
	for _, f := range failCounts {
		cfg := defaultConfig(4, 5)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		m := rt.Machine()
		// Fail f workers spread over clusters (never the kernels).
		failed := 0
		for _, c := range m.Clusters() {
			for _, w := range c.Workers {
				if failed < f {
					m.FailPE(w.ID)
					failed++
				}
			}
		}
		d, err := navm.Partition(k, b, 16)
		if err != nil {
			return nil, err
		}
		x, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N))
		if err != nil {
			return nil, err
		}
		resid := linalg.Residual(k, x, b, nil) / linalg.Norm2(b, nil)
		if f == 0 {
			base = stats.Makespan
		}
		overhead := 0.0
		if base > 0 {
			overhead = float64(stats.Makespan-base) / float64(base)
		}
		t.AddRow(f, len(m.LiveWorkers()), stats.Makespan,
			fmt.Sprintf("%.1f%%", 100*overhead), resid < 1e-6)
	}
	return t, nil
}

// E8Programmability reproduces "determine the ease of programming the
// machine at the various levels": the same 16×16 plate solve expressed at
// each layer, counting the operations the programmer at that level must
// write.  Expected shape: roughly an order of magnitude fewer
// user-visible operations per level going up.
func E8Programmability() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "operations visible to the programmer, same plate solve per level",
		Columns: []string{"level", "user.ops", "objects.touched", "notes"},
		Notes:   "each level hides roughly an order of magnitude of operations from the one above",
	}
	// AUVM: three commands.
	sys, err := core.NewSystem(defaultConfig(2, 4))
	if err != nil {
		return nil, err
	}
	sess := sys.Session("eng")
	auvmCmds := []command.Command{
		command.GenerateGrid{Name: "plate", NX: 16, NY: 16, W: 16, H: 16, ClampLeft: true},
		command.EndLoad{Model: "plate", Set: "tip", FY: -1000},
		command.Solve{Model: "plate", Set: "tip", Parallel: 4},
	}
	for _, c := range auvmCmds {
		if _, err := sess.Do(context.Background(), c); err != nil {
			return nil, err
		}
	}
	t.AddRow("AUVM", len(auvmCmds), 2, "commands: generate, load, solve")

	// NAVM: the analyst's program executes partition + 9 vector/matrix
	// operations per CG iteration (1 SpMV, 3 inner products, 3 axpys,
	// 1 halo exchange, 1 direction update).
	k, b, err := plateSystem(16)
	if err != nil {
		return nil, err
	}
	const p = 4
	rt := navm.NewRuntime(arch.MustNew(defaultConfig(2, 4)))
	col := metrics.NewCollector()
	rt.AttachInstrumentation(col, nil)
	d, err := navm.Partition(k, b, p)
	if err != nil {
		return nil, err
	}
	_, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N))
	if err != nil {
		return nil, err
	}
	navmOps := 3 + 9*stats.Iterations
	t.AddRow("NAVM", navmOps, 4, fmt.Sprintf("9 vector ops × %d iterations", stats.Iterations))

	// SPVM: the system programmer sees every message formatted and
	// decoded — the halo messages the solve actually sent, plus the 2p
	// synchronisation messages behind each of the ~5 barriers per
	// iteration.
	haloMsgs := col.Get(metrics.LevelNAVM, metrics.CtrMsgs)
	barriers := int64(5*stats.Iterations + 3)
	spvmOps := 2*haloMsgs + 2*int64(p)*barriers
	t.AddRow("SPVM", spvmOps, 7, "format+decode for every halo and barrier message")

	// ARCH: the cycle-level view.
	cycles := col.Get(metrics.LevelARCH, metrics.CtrCycles)
	t.AddRow("ARCH", cycles, 16*p, "simulated cycles (no programmer abstraction at all)")
	return t, nil
}

// E9ClusterScheduling reproduces "messages arriving in the input queue of
// any cluster can be processed by any available PE": a message storm to
// one cluster, varying the worker pool.  Expected shape: completion falls
// ~1/workers until the kernel decode serialisation dominates.
func E9ClusterScheduling(workerCounts []int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "message storm dispatch within one cluster",
		Columns: []string{"workers", "messages", "makespan", "ideal", "kernel.bound", "balance"},
		Notes:   "any available PE takes the next message; the kernel PE's decode is the serial floor",
	}
	const msgs = 256
	const work = 2000
	for _, w := range workerCounts {
		cfg := defaultConfig(1, w+1)
		m := arch.MustNew(cfg)
		for i := 0; i < msgs; i++ {
			if _, _, err := m.Send(1, 0, 4, 0, work); err != nil {
				return nil, err
			}
		}
		span := m.Makespan()
		ideal := int64(msgs) * work / int64(w)
		kernelFloor := int64(msgs) * cfg.KernelDecodeCycles
		// Balance: min/max jobs among workers.
		minJ, maxJ := int64(1<<62), int64(0)
		for _, pe := range m.Cluster(0).Workers {
			j := pe.JobsDone()
			if j < minJ {
				minJ = j
			}
			if j > maxJ {
				maxJ = j
			}
		}
		t.AddRow(w, msgs, span, ideal, kernelFloor, fmt.Sprintf("%d/%d", minJ, maxJ))
	}
	return t, nil
}

// E10LinalgKernels reproduces the "fast linear algebra operations"
// requirement: the NAVM-level inner product, axpy, and SpMV over worker
// counts.  Expected shape: axpy scales nearly linearly; the inner product
// saturates on its reduction.
func E10LinalgKernels(workerCounts []int) (*Table, error) {
	k, b, err := plateSystem(16)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("NAVM linear algebra kernels, %d dofs", k.N),
		Columns: []string{"workers", "spmv.cycles", "dot.cycles", "axpy.cycles"},
		Notes:   "dot pays a reduction + barrier; axpy is embarrassingly parallel",
	}
	for _, p := range workerCounts {
		cfg := defaultConfig(maxInt(1, p/4), 6)
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		d, err := navm.Partition(k, b, p)
		if err != nil {
			return nil, err
		}
		spmv, dot, axpy, err := rt.KernelCycles(d)
		if err != nil {
			return nil, err
		}
		t.AddRow(p, spmv, dot, axpy)
	}
	return t, nil
}

// E11HGraphValidation reproduces the formal-specification evaluation:
// every live SPVM message type validates against the H-graph grammar, and
// mutated messages are rejected.  The bench measures grammar-check
// throughput.
func E11HGraphValidation(instances int) (*Table, error) {
	g := hgraph.SPVMMessageGrammar()
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("H-graph grammar validation over %d message instances per type", instances),
		Columns: []string{"message.type", "valid.accepted", "mutants.rejected"},
		Notes:   "the formal definitions are executable: the runtime's own messages are checked",
	}
	mk := func(i int64) []*spvm.Message {
		return []*spvm.Message{
			{Type: spvm.MsgInitiate, TaskType: "w", Replications: i + 1, Parent: 0, Params: []float64{float64(i)}},
			{Type: spvm.MsgPause, Task: spvm.TaskID(i), Parent: 0},
			{Type: spvm.MsgResume, Child: spvm.TaskID(i)},
			{Type: spvm.MsgTerminate, Task: spvm.TaskID(i), Parent: 0},
			{Type: spvm.MsgRemoteCall, Procedure: "dot", Caller: spvm.TaskID(i),
				Window: &spvm.WindowDesc{Array: "x", Kind: "row", Owner: 1, Rows: 1, Cols: i + 1}},
			{Type: spvm.MsgRemoteReturn, Caller: spvm.TaskID(i), Params: []float64{1}},
			{Type: spvm.MsgLoadCode, CodeName: "w", CodeWords: i + 1, LocalWords: i},
		}
	}
	accepted := make([]int, 7)
	rejected := make([]int, 7)
	for i := 0; i < instances; i++ {
		for j, m := range mk(int64(i)) {
			gr := m.ToHGraph()
			if len(g.Validate(gr)) == 0 {
				accepted[j]++
			}
			// Mutate: break the type tag.
			gr.Entry().Arc("type", gr.AddAtom("bad", hgraph.Str("bogus")))
			if len(g.Validate(gr)) > 0 {
				rejected[j]++
			}
		}
	}
	names := []string{"initiate", "pause", "resume", "terminate", "remote-call", "remote-return", "load-code"}
	for j, name := range names {
		t.AddRow(name, fmt.Sprintf("%d/%d", accepted[j], instances), fmt.Sprintf("%d/%d", rejected[j], instances))
	}
	return t, nil
}

// E12SolverComparison compares the three parallel iterative methods the
// FEM literature of the period debated — Jacobi (maximal parallelism,
// slow convergence), multi-colour SOR (Adams' method: SOR convergence
// with Jacobi-like parallelism within each color), and CG — on the same
// distributed system.  Expected shape: Jacobi needs far more iterations
// than multi-colour SOR, which needs more than CG; makespans order
// accordingly once the problem is large enough.
func E12SolverComparison(n, workers int) (*Table, error) {
	k, b, err := plateSystem(n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("parallel solver comparison, %d dofs on %d workers", k.N, workers),
		Columns: []string{"method", "iterations", "Mflops", "halo.Mwords", "makespan", "converged"},
		Notes: "CG < multi-colour SOR < Jacobi in iterations; plain Jacobi often exhausts its budget " +
			"on plate problems — the 1980s reason the FEM machines moved to coloured SOR and CG",
	}
	type run struct {
		name string
		f    func(rt *navm.Runtime, d *navm.DistSystem) (navm.SolveStats, error)
	}
	coloring := linalg.GreedyColoring(k)
	opts := linalg.DefaultIterOpts(k.N)
	opts.Tol = 1e-6
	opts.MaxIter = 30 * k.N
	runs := []run{
		{"cg", func(rt *navm.Runtime, d *navm.DistSystem) (navm.SolveStats, error) {
			_, s, err := rt.ParallelCG(context.Background(), d, opts)
			return s, err
		}},
		{"multicolor-sor", func(rt *navm.Runtime, d *navm.DistSystem) (navm.SolveStats, error) {
			o := opts
			o.Omega = 1.8
			_, s, err := rt.ParallelMultiColorSOR(context.Background(), d, coloring, o)
			return s, err
		}},
		{"jacobi", func(rt *navm.Runtime, d *navm.DistSystem) (navm.SolveStats, error) {
			_, s, err := rt.ParallelJacobi(context.Background(), d, opts)
			return s, err
		}},
	}
	for _, r := range runs {
		rt := navm.NewRuntime(arch.MustNew(defaultConfig(4, 1+workers/4+1)))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		d, err := navm.Partition(k, b, workers)
		if err != nil {
			return nil, err
		}
		stats, err := r.f(rt, d)
		converged := err == nil
		if err != nil && stats.Iterations == 0 {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		t.AddRow(r.name, stats.Iterations, float64(stats.Flops)/1e6,
			float64(stats.HaloWords)/1e6, stats.Makespan, converged)
	}
	return t, nil
}

// E13LatencyAblation sweeps the network latency — the central hardware
// cost the FEM-2 design must choose — and reports the 16-worker CG
// makespan and efficiency at each point.  This is the ablation the
// design-method loop turns: expected shape, makespan grows roughly
// linearly in latency (every barrier and halo pays it), so the design's
// viable cluster count depends directly on the network the budget buys.
func E13LatencyAblation(latencies []int64) (*Table, error) {
	k, b, err := plateSystem(16)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("network latency ablation, 16-worker CG on %d dofs", k.N),
		Columns: []string{"latency", "makespan", "slowdown", "utilization"},
		Notes:   "every inner-product barrier and halo exchange pays the latency; cheap networks buy parallelism",
	}
	var base int64
	for _, lat := range latencies {
		cfg := defaultConfig(4, 6)
		cfg.NetLatency = lat
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		d, err := navm.Partition(k, b, 16)
		if err != nil {
			return nil, err
		}
		_, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N))
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = stats.Makespan
		}
		t.AddRow(lat, stats.Makespan,
			float64(stats.Makespan)/float64(base),
			rt.Machine().Utilization())
	}
	return t, nil
}

// E15RenumberingAblation ablates the node-numbering design choice behind
// the direct-solve baseline: banded Cholesky cost grows with the square
// of the matrix bandwidth, so the 1980s pipeline always ran a
// bandwidth-reducing reordering (reverse Cuthill–McKee) first.  Expected
// shape: on a badly numbered mesh RCM cuts bandwidth and factorisation
// flops dramatically; on a well numbered grid it changes little — the
// ablation shows when the design choice matters.
func E15RenumberingAblation() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "node renumbering (RCM) ablation for the banded Cholesky baseline",
		Columns: []string{"mesh", "order", "bandwidth", "Mflops", "max.err"},
		Notes:   "banded factorisation cost ~ n·bw²: renumbering is the difference between viable and not",
	}
	cases := []struct {
		name string
		k    *linalg.CSR
	}{}
	// Well numbered grid.
	kGood, _, err := plateSystem(12)
	if err != nil {
		return nil, err
	}
	cases = append(cases, struct {
		name string
		k    *linalg.CSR
	}{"grid-natural", kGood})
	// The same matrix under a structured shuffle (interleave halves) —
	// the bad numbering an ad-hoc mesh generator can produce.
	n := kGood.N
	shuf := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			shuf[i] = i / 2
		} else {
			shuf[i] = (n+1)/2 + i/2
		}
	}
	kBad, err := kGood.Permute(shuf)
	if err != nil {
		return nil, err
	}
	cases = append(cases, struct {
		name string
		k    *linalg.CSR
	}{"grid-shuffled", kBad})

	for _, c := range cases {
		want := linalg.NewVector(c.k.N)
		for i := range want {
			want[i] = float64(i%5) - 2
		}
		b := c.k.MulVec(want, nil, nil)
		// Natural order, through a one-shot DirectPlan (the same numeric
		// path the factor caches retain).
		stNat := &linalg.Stats{}
		planNat, err := linalg.NewDirectPlan(c.k, linalg.PlanOpts{})
		if err != nil {
			return nil, err
		}
		if err := planNat.Refactor(c.k, stNat); err != nil {
			return nil, err
		}
		xNat, err := planNat.SolveInto(b, nil, stNat)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, "natural", c.k.Bandwidth(),
			float64(stNat.Flops)/1e6, linalg.MaxAbsDiff(xNat, want))
		// RCM order.
		perm := linalg.RCM(c.k)
		pk, err := c.k.Permute(perm)
		if err != nil {
			return nil, err
		}
		stRCM := &linalg.Stats{}
		xRCM, err := linalg.SolveCholeskyRCM(c.k, b, stRCM)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, "rcm", pk.Bandwidth(),
			float64(stRCM.Flops)/1e6, linalg.MaxAbsDiff(xRCM, want))
	}
	return t, nil
}

// E14CommunicationPattern reproduces the paper's core simulation goal
// verbatim: "simulations to measure the ... communication patterns in
// typical FEM-2 applications".  It runs one parallel solve and reports
// the cluster×cluster message-count matrix, for a regular grid and for a
// substructured solve (whose gather pattern is hub-shaped) — two
// distinctly different patterns on the same machine.
func E14CommunicationPattern() (*Table, error) {
	cfg := defaultConfig(4, 5)
	t := &Table{
		ID:      "E14",
		Title:   "cluster-to-cluster message counts (communication patterns)",
		Columns: []string{"workload", "src\\dst", "c0", "c1", "c2", "c3"},
		Notes:   "the grid solve's halo is neighbour-banded; the substructure gather is hub-shaped toward the coordinator",
	}
	addMatrix := func(label string, m [][]int64) {
		for i, row := range m {
			cells := []any{label, fmt.Sprintf("c%d", i)}
			for _, v := range row {
				cells = append(cells, v)
			}
			t.AddRow(cells...)
			label = "" // only print the workload on its first row
		}
	}

	// Regular grid CG: halo traffic between neighbouring row blocks.
	k, b, err := plateSystem(16)
	if err != nil {
		return nil, err
	}
	rt := navm.NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), nil)
	d, err := navm.Partition(k, b, 4)
	if err != nil {
		return nil, err
	}
	if _, _, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N)); err != nil {
		return nil, err
	}
	addMatrix("grid-cg", rt.Machine().Network().TrafficMatrix())

	// Substructured solve: condensation results gather to one
	// coordinator cluster.
	o := fem.RectGridOpts{NX: 16, NY: 4, W: 16, H: 4, Mat: fem.Steel(), ClampLeft: true}
	m2, err := fem.RectGrid("comm-frame", o)
	if err != nil {
		return nil, err
	}
	ls := fem.EndLoad("tip", o, 0, -100)
	s, err := fem.PartitionByX(m2, 8)
	if err != nil {
		return nil, err
	}
	rt2 := navm.NewRuntime(arch.MustNew(cfg))
	rt2.AttachInstrumentation(metrics.NewCollector(), nil)
	if _, err := fem.SolveSubstructured(context.Background(), m2, s, ls, rt2); err != nil {
		return nil, err
	}
	addMatrix("substructure", rt2.Machine().Network().TrafficMatrix())
	return t, nil
}

// DesignIteration runs the design-method loop itself over a small
// hardware design space, reporting the iteration history — the paper's
// "several iterations through the four levels are made, adjusting the
// design".
func DesignIteration() (*Table, error) {
	var candidates []arch.Config
	for _, clusters := range []int{1, 2, 4, 8} {
		for _, pes := range []int{3, 5} {
			cfg := defaultConfig(clusters, pes)
			candidates = append(candidates, cfg)
		}
	}
	it := &core.DesignIterator{
		Candidates: candidates,
		Workload: func(sys *core.System) error {
			s := sys.Session("eng")
			for _, c := range []command.Command{
				command.GenerateGrid{Name: "plate", NX: 12, NY: 8, W: 12, H: 8, ClampLeft: true},
				command.EndLoad{Model: "plate", Set: "tip", FY: -1000},
				command.Solve{Model: "plate", Set: "tip", Parallel: 8},
			} {
				if _, err := s.Do(context.Background(), c); err != nil {
					return err
				}
			}
			return nil
		},
	}
	best, history, err := it.Run()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "DM",
		Title:   "design-method iteration over the hardware design space",
		Columns: []string{"iter", "clusters", "PEs/cluster", "makespan", "utilization", "best"},
		Notes: fmt.Sprintf("winner: %d clusters × %d PEs",
			best.Config.Clusters, best.Config.PEsPerCluster),
	}
	for _, h := range history {
		mark := ""
		if h.Best {
			mark = "*"
		}
		t.AddRow(h.Iteration, h.Req.Config.Clusters, h.Req.Config.PEsPerCluster,
			h.Req.Makespan, h.Req.Utilization, mark)
	}
	return t, nil
}

// backendCycles solves through the registry and converts the flop count
// into single-PE cycles.
func backendCycles(name string, k *linalg.CSR, b linalg.Vector) (int64, error) {
	s, err := linalg.Backend(name)
	if err != nil {
		return 0, err
	}
	_, info, err := s.Solve(context.Background(), k, b, linalg.IterOpts{})
	if err != nil {
		return 0, err
	}
	return info.Flops * navm.CyclesPerFlop, nil
}

// E16SequentialBackends compares every backend in the solver registry —
// plus CG under each registered preconditioner — on the same plate.
// Because the case list is generated from the registries, a newly
// registered engine appears in this table with no experiment change.
// Expected shape: the direct solvers agree to machine precision and pay
// bandwidth-squared flops; preconditioning cuts the CG iteration count;
// plain Jacobi may exhaust its budget — reported, not fatal.  The
// warm.Mflops column is the cost of a repeat solve: for the direct
// backends it rides the plate's factor cache (a triangular solve, the
// factor-once split); an iterative backend repeats its full iteration.
func E16SequentialBackends(n int) (*Table, error) {
	k, b, err := plateSystem(n)
	if err != nil {
		return nil, err
	}
	factors, err := plateFactors(n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("solver engine registry on one %d-dof plate", k.N),
		Columns: []string{"engine", "iters", "Mflops", "warm.Mflops", "residual", "max.err", "converged"},
		Notes: "rows are generated from linalg.Backends()/Preconds(); " +
			"warm.Mflops repeats the solve through the plate's factor cache (direct backends reuse the factor)",
	}
	type engine struct{ backend, precond string }
	var cases []engine
	for _, name := range linalg.Backends() {
		cases = append(cases, engine{name, ""})
		if name == linalg.BackendCG {
			for _, p := range linalg.Preconds() {
				cases = append(cases, engine{name, p})
			}
		}
	}
	chol, err := linalg.Backend(linalg.BackendCholesky)
	if err != nil {
		return nil, err
	}
	ref, _, err := chol.Solve(context.Background(), k, b, linalg.IterOpts{})
	if err != nil {
		return nil, err
	}
	for _, c := range cases {
		s, err := linalg.Backend(c.backend)
		if err != nil {
			return nil, err
		}
		x, info, err := s.Solve(context.Background(), k, b, linalg.IterOpts{Precond: c.precond})
		if err != nil && !errors.Is(err, linalg.ErrNoConvergence) {
			return nil, fmt.Errorf("%s: %w", c.backend, err)
		}
		label := c.backend
		if info.Precond != "" {
			label += "+" + info.Precond
		}
		warmFlops := info.Flops
		if _, direct := linalg.PlanOptsFor(c.backend); direct && c.precond == "" {
			// Prime the cache (a no-op when an earlier table already
			// factored this plate), then measure the warm repeat.
			if _, _, err := factors.SolveCached(c.backend, k, b, nil); err != nil {
				return nil, fmt.Errorf("%s warm: %w", c.backend, err)
			}
			warmSt := &linalg.Stats{}
			xw, refac, err := factors.SolveCached(c.backend, k, b, warmSt)
			if err != nil {
				return nil, fmt.Errorf("%s warm: %w", c.backend, err)
			}
			if refac {
				return nil, fmt.Errorf("%s: repeat solve refactored a warm cache", c.backend)
			}
			if d := linalg.MaxAbsDiff(xw, x); d != 0 {
				return nil, fmt.Errorf("%s: warm solve differs from cold by %g", c.backend, d)
			}
			warmFlops = warmSt.Flops
		}
		t.AddRow(label, info.Iterations, float64(info.Flops)/1e6, float64(warmFlops)/1e6,
			info.Residual, linalg.MaxAbsDiff(x, ref), err == nil)
	}
	return t, nil
}

// RunAll executes every experiment with its default parameters and
// returns the tables in order; cmd/fem2sim prints them.
func RunAll() ([]*Table, error) {
	var out []*Table
	runs := []func() (*Table, error){
		func() (*Table, error) { return E1Requirements([]int{8, 16, 24, 32}, 8) },
		func() (*Table, error) { return E2SolverSpeedup(24, []int{1, 2, 4, 8, 16}) },
		func() (*Table, error) { return E3Substructure([]int{1, 2, 4, 8}) },
		func() (*Table, error) { return E4MultiUser([]int{1, 2, 4, 8}) },
		func() (*Table, error) { return E5TaskInitiation([]int{10, 100, 1000}) },
		E6WindowAccess,
		func() (*Table, error) { return E7FaultIsolation([]int{0, 1, 2, 4}) },
		E8Programmability,
		func() (*Table, error) { return E9ClusterScheduling([]int{2, 4, 8}) },
		func() (*Table, error) { return E10LinalgKernels([]int{1, 4, 16}) },
		func() (*Table, error) { return E11HGraphValidation(50) },
		func() (*Table, error) { return E12SolverComparison(8, 4) },
		func() (*Table, error) { return E13LatencyAblation([]int64{0, 50, 200, 800}) },
		E14CommunicationPattern,
		E15RenumberingAblation,
		func() (*Table, error) { return E16SequentialBackends(8) },
		DesignIteration,
	}
	for _, r := range runs {
		t, err := r()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
