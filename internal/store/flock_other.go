//go:build !unix

package store

import "os"

// Non-unix platforms get no cross-process file locking; shared-mode
// stores there rely on the in-process mutex alone (single-process
// tests still work, true multi-daemon sharing needs unix).
func flockFile(*os.File) error { return nil }

func funlockFile(*os.File) error { return nil }
