package store

import "fmt"

// Backend names accepted by Config.Backend (the -store flag values).
const (
	// BackendMem keeps everything in process memory: fast, and gone on
	// exit.  The default, and the pre-durability behaviour.
	BackendMem = "mem"
	// BackendFile persists to a single append-only log file with an
	// in-memory index, compacted on open.
	BackendFile = "file"
)

// Config selects and parameterizes a backend, in the style of neo-go's
// dbconfig: one small struct a binary can fill from flags and hand to
// Open.
type Config struct {
	// Backend is BackendMem or BackendFile.  Empty means BackendMem.
	Backend string
	// Path is the store file for BackendFile; ignored for BackendMem.
	Path string
	// Sync makes the file backend fsync after every Batch (the
	// -store-sync flag).  Off by default: the log's CRC framing already
	// makes a crash lose at most the unsynced tail, never corrupt it,
	// and fsync-per-batch costs orders of magnitude in throughput.
	Sync bool
	// CompactAt overrides the file backend's compaction threshold:
	// 0 keeps the default (64 KiB of dead bytes), a positive value
	// replaces it, a negative value suppresses compaction.  Tests use
	// it to force or forbid compaction deterministically.
	CompactAt int64
	// Shared opens the file backend in multi-process mode: no
	// truncation or compaction at open, an exclusive file lock around
	// every append, and Refresh/Seal available for followers and
	// takeover.  The cluster layer sets it; single-daemon deployments
	// leave it off.
	Shared bool
	// Wrap, when non-nil, decorates the freshly opened backend before
	// anything else sees it.  It exists for fault injection: chaos tests
	// interpose internal/fault's store wrapper here, underneath the
	// degradation guard and the cache.
	Wrap func(Store) Store
}

// Open builds the configured backend and applies the Wrap hook.  The
// caller usually wraps the result in NewCached.
func Open(cfg Config) (Store, error) {
	var s Store
	switch cfg.Backend {
	case "", BackendMem:
		s = NewMemStore()
	case BackendFile:
		if cfg.Path == "" {
			return nil, fmt.Errorf("store: file backend needs a path")
		}
		fs, err := OpenFileStoreWith(cfg.Path, FileOpts{Sync: cfg.Sync, CompactAt: cfg.CompactAt, Shared: cfg.Shared})
		if err != nil {
			return nil, err
		}
		s = fs
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %s or %s)", cfg.Backend, BackendMem, BackendFile)
	}
	if cfg.Wrap != nil {
		s = cfg.Wrap(s)
	}
	return s, nil
}

// BackendName normalizes a Config's backend for display (the version
// verb and the wire Welcome envelope).
func (c Config) BackendName() string {
	if c.Backend == "" {
		return BackendMem
	}
	return c.Backend
}
