package store

import "fmt"

// Backend names accepted by Config.Backend (the -store flag values).
const (
	// BackendMem keeps everything in process memory: fast, and gone on
	// exit.  The default, and the pre-durability behaviour.
	BackendMem = "mem"
	// BackendFile persists to a single append-only log file with an
	// in-memory index, compacted on open.
	BackendFile = "file"
)

// Config selects and parameterizes a backend, in the style of neo-go's
// dbconfig: one small struct a binary can fill from flags and hand to
// Open.
type Config struct {
	// Backend is BackendMem or BackendFile.  Empty means BackendMem.
	Backend string
	// Path is the store file for BackendFile; ignored for BackendMem.
	Path string
}

// Open builds the configured backend.  The caller usually wraps the
// result in NewCached.
func Open(cfg Config) (Store, error) {
	switch cfg.Backend {
	case "", BackendMem:
		return NewMemStore(), nil
	case BackendFile:
		if cfg.Path == "" {
			return nil, fmt.Errorf("store: file backend needs a path")
		}
		return OpenFileStore(cfg.Path)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %s or %s)", cfg.Backend, BackendMem, BackendFile)
	}
}

// BackendName normalizes a Config's backend for display (the version
// verb and the wire Welcome envelope).
func (c Config) BackendName() string {
	if c.Backend == "" {
		return BackendMem
	}
	return c.Backend
}
