package store_test

import (
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// The conformance suite pins the Store contract against every
// implementation: MemStore, FileStore (with and without fsync-per-batch),
// CachedStore over each, a healthy degradation Guard, and the fault
// wrapper with its weather disarmed — a decorator must be invisible
// until it injects.
func conformanceStores(t *testing.T) map[string]func(t *testing.T) store.Store {
	openFile := func(t *testing.T, sync bool) store.Store {
		s, err := store.OpenFileStoreSync(filepath.Join(t.TempDir(), "conf.db"), sync)
		if err != nil {
			t.Fatalf("open file store: %v", err)
		}
		return s
	}
	return map[string]func(t *testing.T) store.Store{
		"mem":       func(t *testing.T) store.Store { return store.NewMemStore() },
		"file":      func(t *testing.T) store.Store { return openFile(t, false) },
		"file-sync": func(t *testing.T) store.Store { return openFile(t, true) },
		"cached-mem": func(t *testing.T) store.Store {
			return store.NewCached(store.NewMemStore(), 8)
		},
		"cached-file": func(t *testing.T) store.Store {
			// A tiny cache bound forces eviction + backend refill paths.
			return store.NewCached(openFile(t, false), 2)
		},
		"cached-file-sync": func(t *testing.T) store.Store {
			return store.NewCached(openFile(t, true), 2)
		},
		"guard-mem": func(t *testing.T) store.Store {
			return store.NewGuard(store.NewMemStore(), store.GuardOpts{})
		},
		"fault-mem-disarmed": func(t *testing.T) store.Store {
			in := fault.NewInjector(1, fault.Rule{Fault: fault.Fault{Err: fault.ErrIO}})
			in.Disarm()
			return fault.NewStore(store.NewMemStore(), in)
		},
		"fault-file-disarmed": func(t *testing.T) store.Store {
			in := fault.NewInjector(1, fault.Rule{Fault: fault.Fault{Err: fault.ErrIO}})
			in.Disarm()
			return fault.NewStore(openFile(t, false), in)
		},
	}
}

func TestConformance(t *testing.T) {
	for name, open := range conformanceStores(t) {
		t.Run(name, func(t *testing.T) { storetest.Run(t, open) })
	}
}

func TestEnsureFormat(t *testing.T) {
	s := store.NewMemStore()
	defer s.Close()
	if err := store.EnsureFormat(s); err != nil {
		t.Fatalf("EnsureFormat on fresh store: %v", err)
	}
	if v, err := s.Get(store.KeyFormat); err != nil || string(v) != store.FormatVersion {
		t.Fatalf("format key = %q, %v", v, err)
	}
	if err := store.EnsureFormat(s); err != nil {
		t.Fatalf("EnsureFormat idempotent: %v", err)
	}
	s.Put(store.KeyFormat, []byte("99"))
	if err := store.EnsureFormat(s); err == nil {
		t.Fatal("EnsureFormat accepted future format version")
	}
}

func TestOpenConfig(t *testing.T) {
	if s, err := store.Open(store.Config{}); err != nil {
		t.Fatalf("Open default: %v", err)
	} else if _, ok := s.(*store.MemStore); !ok {
		t.Fatalf("Open default = %T, want *MemStore", s)
	}
	path := filepath.Join(t.TempDir(), "x.db")
	s, err := store.Open(store.Config{Backend: store.BackendFile, Path: path, Sync: true})
	if err != nil {
		t.Fatalf("Open file: %v", err)
	}
	s.Close()
	if _, err := store.Open(store.Config{Backend: store.BackendFile}); err == nil {
		t.Fatal("Open file without path succeeded")
	}
	if _, err := store.Open(store.Config{Backend: "bolt"}); err == nil {
		t.Fatal("Open unknown backend succeeded")
	}
	if got := (store.Config{}).BackendName(); got != store.BackendMem {
		t.Fatalf("BackendName() = %q", got)
	}
	// The Wrap hook decorates the backend before Open returns it.
	wrapped, err := store.Open(store.Config{Wrap: func(s store.Store) store.Store {
		return store.NewGuard(s, store.GuardOpts{})
	}})
	if err != nil {
		t.Fatalf("Open with Wrap: %v", err)
	}
	if _, ok := wrapped.(*store.Guard); !ok {
		t.Fatalf("Open with Wrap = %T, want *Guard", wrapped)
	}
	wrapped.Close()
}
