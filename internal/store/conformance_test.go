package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/errs"
)

// The conformance suite pins the Store contract against every
// implementation: MemStore, FileStore, and CachedStore over each.
func conformanceStores(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"mem": func(t *testing.T) Store { return NewMemStore() },
		"file": func(t *testing.T) Store {
			s, err := OpenFileStore(filepath.Join(t.TempDir(), "conf.db"))
			if err != nil {
				t.Fatalf("open file store: %v", err)
			}
			return s
		},
		"cached-mem": func(t *testing.T) Store { return NewCached(NewMemStore(), 8) },
		"cached-file": func(t *testing.T) Store {
			b, err := OpenFileStore(filepath.Join(t.TempDir(), "conf.db"))
			if err != nil {
				t.Fatalf("open file store: %v", err)
			}
			// A tiny cache bound forces eviction + backend refill paths.
			return NewCached(b, 2)
		},
	}
}

func TestConformance(t *testing.T) {
	for name, open := range conformanceStores(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("get-put-delete", func(t *testing.T) { testGetPutDelete(t, open(t)) })
			t.Run("seek-prefix-order", func(t *testing.T) { testSeekPrefixOrder(t, open(t)) })
			t.Run("batch-atomic", func(t *testing.T) { testBatch(t, open(t)) })
			t.Run("closed", func(t *testing.T) { testClosed(t, open(t)) })
			t.Run("caller-owns-buffers", func(t *testing.T) { testBufferOwnership(t, open(t)) })
		})
	}
}

func testGetPutDelete(t *testing.T, s Store) {
	defer s.Close()
	if _, err := s.Get("missing"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := s.Get("k"); err != nil || string(v) != "v1" {
		t.Fatalf("Get(k) = %q, %v, want v1", v, err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if v, _ := s.Get("k"); string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q, want v2", v)
	}
	// Empty values round-trip (they are puts, not deletes).
	if err := s.Put("empty", nil); err != nil {
		t.Fatalf("Put empty: %v", err)
	}
	if v, err := s.Get("empty"); err != nil || len(v) != 0 {
		t.Fatalf("Get(empty) = %q, %v, want empty value", v, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of missing key = %v, want nil", err)
	}
}

func testSeekPrefixOrder(t *testing.T, s Store) {
	defer s.Close()
	// Inserted out of order; Seek must return ascending byte order.
	for _, k := range []string{"m:plate", "m:beam", "s:beam:00000002", "s:beam:00000001", "j:0001", "m:arch"} {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	var got []string
	if err := s.Seek("m:", func(k string, v []byte) bool {
		if string(v) != "v-"+k {
			t.Errorf("Seek value for %s = %q", k, v)
		}
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	want := []string{"m:arch", "m:beam", "m:plate"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Seek(m:) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	s.Seek("m:", func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Seek early-stop visited %d keys, want 1", n)
	}
	// Prefix with trailing separator does not leak sibling families.
	var sol []string
	s.Seek("s:beam:", func(k string, _ []byte) bool { sol = append(sol, k); return true })
	want = []string{"s:beam:00000001", "s:beam:00000002"}
	if fmt.Sprint(sol) != fmt.Sprint(want) {
		t.Fatalf("Seek(s:beam:) = %v, want %v", sol, want)
	}
	// Empty prefix sees everything.
	n = 0
	s.Seek("", func(string, []byte) bool { n++; return true })
	if n != 6 {
		t.Fatalf("Seek(\"\") visited %d keys, want 6", n)
	}
}

func testBatch(t *testing.T, s Store) {
	defer s.Close()
	s.Put("a", []byte("old"))
	s.Put("gone", []byte("x"))
	err := s.Batch([]Op{
		Put("a", []byte("new")),
		Put("b", []byte("2")),
		Del("gone"),
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if v, _ := s.Get("a"); string(v) != "new" {
		t.Fatalf("a = %q after batch", v)
	}
	if v, _ := s.Get("b"); string(v) != "2" {
		t.Fatalf("b = %q after batch", v)
	}
	if _, err := s.Get("gone"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("gone still present after batch delete: %v", err)
	}
}

func testClosed(t *testing.T, s Store) {
	s.Put("k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v, want ErrClosed", err)
	}
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close = %v, want ErrClosed", err)
	}
	if err := s.Seek("", func(string, []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Errorf("Seek after close = %v, want ErrClosed", err)
	}
	if err := s.Batch([]Op{Put("k", nil)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Batch after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

func testBufferOwnership(t *testing.T, s Store) {
	defer s.Close()
	buf := []byte("original")
	s.Put("k", buf)
	copy(buf, "CLOBBER!")
	if v, _ := s.Get("k"); string(v) != "original" {
		t.Fatalf("store kept a reference to the caller's Put buffer: %q", v)
	}
	v1, _ := s.Get("k")
	copy(v1, "SCRIBBLE")
	if v2, _ := s.Get("k"); string(v2) != "original" {
		t.Fatalf("mutating a Get result corrupted the store: %q", v2)
	}
}

func TestEnsureFormat(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := EnsureFormat(s); err != nil {
		t.Fatalf("EnsureFormat on fresh store: %v", err)
	}
	if v, err := s.Get(KeyFormat); err != nil || string(v) != FormatVersion {
		t.Fatalf("format key = %q, %v", v, err)
	}
	if err := EnsureFormat(s); err != nil {
		t.Fatalf("EnsureFormat idempotent: %v", err)
	}
	s.Put(KeyFormat, []byte("99"))
	if err := EnsureFormat(s); err == nil {
		t.Fatal("EnsureFormat accepted future format version")
	}
}

func TestOpenConfig(t *testing.T) {
	if s, err := Open(Config{}); err != nil {
		t.Fatalf("Open default: %v", err)
	} else if _, ok := s.(*MemStore); !ok {
		t.Fatalf("Open default = %T, want *MemStore", s)
	}
	path := filepath.Join(t.TempDir(), "x.db")
	s, err := Open(Config{Backend: BackendFile, Path: path})
	if err != nil {
		t.Fatalf("Open file: %v", err)
	}
	s.Close()
	if _, err := Open(Config{Backend: BackendFile}); err == nil {
		t.Fatal("Open file without path succeeded")
	}
	if _, err := Open(Config{Backend: "bolt"}); err == nil {
		t.Fatal("Open unknown backend succeeded")
	}
	if got := (Config{}).BackendName(); got != BackendMem {
		t.Fatalf("BackendName() = %q", got)
	}
}
