package store

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// MemStore is the in-memory backend: a mutex-guarded map.  It is the
// default backend and the reference implementation the conformance
// suite pins the file backend against.
type MemStore struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: map[string][]byte{}}
}

// Get returns a copy of the value under key.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("store: key %q: %w", key, ErrNotFound)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Put stores a copy of value under key.
func (s *MemStore) Put(key string, value []byte) error {
	return s.Batch([]Op{Put(key, value)})
}

// Delete removes key; deleting a missing key is a no-op.
func (s *MemStore) Delete(key string) error {
	return s.Batch([]Op{Del(key)})
}

// Batch applies ops atomically (the map is only touched under the
// write lock, so readers see all of the batch or none of it).
func (s *MemStore) Batch(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, op := range ops {
		if op.Delete {
			delete(s.m, op.Key)
			continue
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.m[op.Key] = v
	}
	return nil
}

// BatchIf applies ops atomically iff the current value under key
// equals want (nil want = key absent); otherwise ErrConflict.  The
// compare and the writes share the one write lock, so racing callers
// serialize and exactly one wins.
func (s *MemStore) BatchIf(key string, want []byte, ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cur, ok := s.m[key]
	if ok != (want != nil) || !bytes.Equal(cur, want) {
		return ErrConflict
	}
	for _, op := range ops {
		if op.Delete {
			delete(s.m, op.Key)
			continue
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.m[op.Key] = v
	}
	return nil
}

// Seek visits keys with the given prefix in ascending byte order.
func (s *MemStore) Seek(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = s.m[k]
	}
	s.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return nil
		}
	}
	return nil
}

// Close marks the store closed; further operations return ErrClosed.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.m = nil
	return nil
}
