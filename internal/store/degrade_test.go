package store_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// guardOverFaults builds a Guard over a fault-wrapped MemStore with the
// background probe disabled (tests drive recovery via Probe).
func guardOverFaults(t *testing.T, in *fault.Injector, opts store.GuardOpts) *store.Guard {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = -1
	}
	g := store.NewGuard(fault.NewStore(store.NewMemStore(), in), opts)
	t.Cleanup(func() { g.Close() })
	return g
}

func TestGuardTripsAfterConsecutiveFailures(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, Fault: fault.Fault{Err: fault.ErrIO}})
	in.Disarm()
	g := guardOverFaults(t, in, store.GuardOpts{Threshold: 3})

	if err := g.Put("k", []byte("v")); err != nil {
		t.Fatalf("healthy Put: %v", err)
	}
	in.Arm()
	for i := 0; i < 3; i++ {
		if g.Degraded() {
			t.Fatalf("degraded after only %d failures (threshold 3)", i)
		}
		if err := g.Put("k", []byte("v")); !errors.Is(err, fault.ErrIO) {
			t.Fatalf("failure %d: err = %v, want ErrIO", i, err)
		}
	}
	if !g.Degraded() {
		t.Fatal("guard not degraded after 3 consecutive write failures")
	}
	if g.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", g.Trips())
	}

	// Degraded: writes refuse fast with ErrDegraded, without touching
	// the backend; reads still serve.
	puts := in.Calls(fault.OpPut)
	if err := g.Put("k2", nil); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("degraded Put = %v, want ErrDegraded", err)
	}
	if err := g.Batch([]store.Op{store.Put("k3", nil)}); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("degraded Batch = %v, want ErrDegraded", err)
	}
	if err := g.Delete("k"); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("degraded Delete = %v, want ErrDegraded", err)
	}
	if got := in.Calls(fault.OpPut); got != puts {
		t.Fatalf("degraded writes reached the backend (%d -> %d calls)", puts, got)
	}
	if v, err := g.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("degraded Get = %q, %v, want v", v, err)
	}

	// Probe fails while the weather holds, recovers once it clears.
	if g.Probe() {
		t.Fatal("Probe succeeded while faults are still armed")
	}
	in.Disarm()
	if !g.Probe() {
		t.Fatal("Probe failed after faults cleared")
	}
	if g.Degraded() {
		t.Fatal("guard still degraded after successful probe")
	}
	if err := g.Put("k2", []byte("back")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}

func TestGuardSuccessResetsFailureCount(t *testing.T) {
	// Fail, fail, succeed, fail, fail, succeed, ... — never 3 in a row,
	// so the guard must never trip.
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, Every: 3, Fault: fault.Fault{Err: fault.ErrIO}})
	g := guardOverFaults(t, in, store.GuardOpts{Threshold: 3})
	for i := 0; i < 30; i++ {
		g.Put("k", []byte("v"))
		if g.Degraded() {
			t.Fatalf("guard tripped at write %d despite interleaved successes", i)
		}
	}
}

func TestGuardBackgroundProbeRecovers(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, Fault: fault.Fault{Err: fault.ErrIO}})
	flips := make(chan bool, 4)
	g := store.NewGuard(fault.NewStore(store.NewMemStore(), in), store.GuardOpts{
		Threshold:     1,
		ProbeInterval: 5 * time.Millisecond,
		OnChange:      func(d bool) { flips <- d },
	})
	defer g.Close()

	if err := g.Put("k", nil); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("Put = %v, want ErrIO", err)
	}
	select {
	case d := <-flips:
		if !d {
			t.Fatal("first OnChange reported recovery, want trip")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("guard never reported the trip")
	}
	in.Disarm()
	select {
	case d := <-flips:
		if d {
			t.Fatal("second OnChange reported trip, want recovery")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("background probe never recovered the guard")
	}
	if g.Degraded() {
		t.Fatal("guard degraded after background recovery")
	}
	if err := g.Put("k", nil); err != nil {
		t.Fatalf("Put after background recovery: %v", err)
	}
}

// Regression: Close must stop the background probe goroutine even
// while the backend is still failing — a daemon that cycles guards
// (or a test suite) must not accumulate probe loops.
func TestGuardProbeGoroutineStopsOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, Fault: fault.Fault{Err: fault.ErrIO}})
		g := store.NewGuard(fault.NewStore(store.NewMemStore(), in), store.GuardOpts{
			Threshold:     1,
			ProbeInterval: time.Millisecond,
		})
		if err := g.Put("k", nil); !errors.Is(err, fault.ErrIO) {
			t.Fatalf("iteration %d: Put = %v, want ErrIO", i, err)
		}
		if !g.Degraded() {
			t.Fatalf("iteration %d: guard not degraded at threshold 1", i)
		}
		// Close with the probe loop live and the weather still bad: the
		// loop must exit on the stop channel, not on recovery.
		g.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("probe goroutines leaked: %d before, %d after 10 guard lifecycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGuardNotFoundIsNotAFailure(t *testing.T) {
	g := store.NewGuard(store.NewMemStore(), store.GuardOpts{Threshold: 1, ProbeInterval: -1})
	defer g.Close()
	// Reads of missing keys and deletes of missing keys must not count
	// toward degradation.
	for i := 0; i < 5; i++ {
		if _, err := g.Get("missing"); !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("Get = %v", err)
		}
		if err := g.Delete("missing"); err != nil {
			t.Fatalf("Delete = %v", err)
		}
	}
	if g.Degraded() {
		t.Fatal("guard tripped on not-found reads")
	}
}
