// Package store is the durable key-value layer under FEM-2: one small
// Store interface, swappable backends behind a Config, and a
// write-through cache in front — the neo-go core/storage + dbconfig +
// MemCachedStore layering, sized for this repo.
//
// Everything the service persists goes through this package under a
// documented key schema (see docs/storage.md):
//
//	meta:format        store format version ("1"), written on first open
//	m:<name>           model topology + properties (gob modelDTO, auvm)
//	s:<name>:<seq>     solution history, seq zero-padded %08d (JSON)
//	j:<id>             job records, id zero-padded %016x (JSON)
//
// Keys are ordered by byte comparison, so zero-padding the numeric
// components makes Seek return history in submission order for free.
//
// Encodings are deterministic: the same logical value always encodes
// to the same bytes, so snapshot/restore round-trips and crash
// recovery are reproducible.
package store

import (
	"errors"
	"fmt"

	"repro/internal/errs"
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = fmt.Errorf("store: closed")

// ErrNotFound wraps the shared not-found sentinel so callers can test
// with errors.Is(err, errs.ErrNotFound) across every layer.
var ErrNotFound = errs.ErrNotFound

// ErrConflict is returned by BatchIf when the guarded key's current
// value does not match the expected bytes: somebody else won the race.
// The batch was not applied.
var ErrConflict = errors.New("store: conditional batch conflict")

// FormatVersion is the current on-disk format, kept under KeyFormat.
const FormatVersion = "1"

// KeyFormat is the metadata key holding the store format version.
const KeyFormat = "meta:format"

// KeyProbe is the metadata key the degradation guard's health probe
// writes to test whether the backend accepts writes again (see Guard).
const KeyProbe = "meta:probe"

// KeyLease is the metadata key holding the cluster leadership lease: a
// JSON record naming the current leader, its advertised address, the
// lease epoch, and the expiry instant (see internal/cluster and
// docs/cluster.md).  It changes on every renewal, which is what makes
// it usable as the compare key for acquire/renew races.
const KeyLease = "meta:lease"

// KeyEpoch is the metadata key holding just the current lease epoch as
// decimal ASCII.  Unlike KeyLease it changes only on takeover, so data
// batches fence against it without racing the renewal loop.
const KeyEpoch = "meta:epoch"

// Key-schema prefixes.  Callers build full keys with the helpers below
// and iterate families with Seek(prefix).
const (
	PrefixModel    = "m:"
	PrefixSolution = "s:"
	PrefixJob      = "j:"
	PrefixMeta     = "meta:"
)

// ModelKey returns the key holding model name's encoded topology.
func ModelKey(name string) string { return PrefixModel + name }

// SolutionPrefix returns the prefix under which model name's solution
// history lives.  The trailing colon keeps "plate" from matching
// "plate2" records.
func SolutionPrefix(name string) string { return PrefixSolution + name + ":" }

// SolutionKey returns the key for the seq'th solution of model name.
// seq is zero-padded so byte order is submission order.
func SolutionKey(name string, seq int) string {
	return fmt.Sprintf("%s%s:%08d", PrefixSolution, name, seq)
}

// JobKey returns the key for a job record.  The id is zero-padded hex
// so byte order is submission order.
func JobKey(id int64) string { return fmt.Sprintf("%s%016x", PrefixJob, id) }

// Op is one write in a Batch: a put (Value non-nil semantics chosen by
// Delete flag, not nilness, so empty values round-trip) or a delete.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// Put builds a put Op.
func Put(key string, value []byte) Op { return Op{Key: key, Value: value} }

// Del builds a delete Op.
func Del(key string) Op { return Op{Key: key, Delete: true} }

// Store is the one interface every backend implements.
//
// Contracts shared by all implementations (pinned by the conformance
// suite in conformance_test.go):
//
//   - Get returns a copy the caller owns; a missing key reports an
//     error satisfying errors.Is(err, ErrNotFound).
//   - Put stores a copy of value; the caller may reuse its buffer.
//   - Delete of a missing key is a no-op, not an error.
//   - Seek visits keys with the given prefix in ascending byte order
//     and stops early when fn returns false.  The value passed to fn
//     is owned by fn only for the duration of the call.
//   - Batch applies all ops atomically: after a crash either every op
//     in the batch is visible or none is.
//   - Every method on a closed store returns ErrClosed (Seek returns
//     it, Get wraps it).
type Store interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
	Delete(key string) error
	Seek(prefix string, fn func(key string, value []byte) bool) error
	Batch(ops []Op) error
	Close() error
}

// Conditional is the compare-and-batch extension every backend in this
// repo implements: BatchIf applies ops atomically if and only if the
// current value under key equals want byte-for-byte (want nil means
// "key must be absent").  On mismatch it returns ErrConflict and writes
// nothing.  The compare and the apply happen under one lock (and, for
// a shared file store, one file lock), so two racing writers cannot
// both see the same old value and both win — which is exactly the
// primitive lease acquisition and epoch fencing need.
type Conditional interface {
	BatchIf(key string, want []byte, ops []Op) error
}

// BatchIf dispatches to the store's Conditional implementation.  Every
// store in this package (and the fault wrapper) implements it; the
// error return exists for exotic third-party Store values.
func BatchIf(s Store, key string, want []byte, ops []Op) error {
	c, ok := s.(Conditional)
	if !ok {
		return fmt.Errorf("store: %T does not support conditional batches", s)
	}
	return c.BatchIf(key, want, ops)
}

// Refresher is implemented by stores that can tail state written by
// another process sharing the same backing file (see FileStore's
// shared mode).  Refresh folds newly committed frames into the index;
// it never truncates, because the writer may be mid-append.
type Refresher interface {
	Refresh() error
}

// Refresh dispatches to the store's Refresher implementation; stores
// without one (the in-process backends) are trivially fresh.
func Refresh(s Store) error {
	if r, ok := s.(Refresher); ok {
		return r.Refresh()
	}
	return nil
}

// Sealer is implemented by stores with a takeover step: Seal tails
// everything the dead previous writer committed and truncates its torn
// tail (see FileStore's shared mode).
type Sealer interface {
	Seal() error
}

// Seal dispatches to the store's Sealer implementation; stores without
// one have nothing to seal.
func Seal(s Store) error {
	if x, ok := s.(Sealer); ok {
		return x.Seal()
	}
	return nil
}

// EnsureFormat checks the store's format version, writing it on a
// fresh store and refusing to open a store written by an incompatible
// future format.
func EnsureFormat(s Store) error {
	v, err := s.Get(KeyFormat)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return s.Put(KeyFormat, []byte(FormatVersion))
		}
		return fmt.Errorf("store: reading format version: %w", err)
	}
	if string(v) != FormatVersion {
		return fmt.Errorf("store: format version %q not supported (want %q)", v, FormatVersion)
	}
	return nil
}
