// Package store is the durable key-value layer under FEM-2: one small
// Store interface, swappable backends behind a Config, and a
// write-through cache in front — the neo-go core/storage + dbconfig +
// MemCachedStore layering, sized for this repo.
//
// Everything the service persists goes through this package under a
// documented key schema (see docs/storage.md):
//
//	meta:format        store format version ("1"), written on first open
//	m:<name>           model topology + properties (gob modelDTO, auvm)
//	s:<name>:<seq>     solution history, seq zero-padded %08d (JSON)
//	j:<id>             job records, id zero-padded %016x (JSON)
//
// Keys are ordered by byte comparison, so zero-padding the numeric
// components makes Seek return history in submission order for free.
//
// Encodings are deterministic: the same logical value always encodes
// to the same bytes, so snapshot/restore round-trips and crash
// recovery are reproducible.
package store

import (
	"errors"
	"fmt"

	"repro/internal/errs"
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = fmt.Errorf("store: closed")

// ErrNotFound wraps the shared not-found sentinel so callers can test
// with errors.Is(err, errs.ErrNotFound) across every layer.
var ErrNotFound = errs.ErrNotFound

// FormatVersion is the current on-disk format, kept under KeyFormat.
const FormatVersion = "1"

// KeyFormat is the metadata key holding the store format version.
const KeyFormat = "meta:format"

// KeyProbe is the metadata key the degradation guard's health probe
// writes to test whether the backend accepts writes again (see Guard).
const KeyProbe = "meta:probe"

// Key-schema prefixes.  Callers build full keys with the helpers below
// and iterate families with Seek(prefix).
const (
	PrefixModel    = "m:"
	PrefixSolution = "s:"
	PrefixJob      = "j:"
	PrefixMeta     = "meta:"
)

// ModelKey returns the key holding model name's encoded topology.
func ModelKey(name string) string { return PrefixModel + name }

// SolutionPrefix returns the prefix under which model name's solution
// history lives.  The trailing colon keeps "plate" from matching
// "plate2" records.
func SolutionPrefix(name string) string { return PrefixSolution + name + ":" }

// SolutionKey returns the key for the seq'th solution of model name.
// seq is zero-padded so byte order is submission order.
func SolutionKey(name string, seq int) string {
	return fmt.Sprintf("%s%s:%08d", PrefixSolution, name, seq)
}

// JobKey returns the key for a job record.  The id is zero-padded hex
// so byte order is submission order.
func JobKey(id int64) string { return fmt.Sprintf("%s%016x", PrefixJob, id) }

// Op is one write in a Batch: a put (Value non-nil semantics chosen by
// Delete flag, not nilness, so empty values round-trip) or a delete.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// Put builds a put Op.
func Put(key string, value []byte) Op { return Op{Key: key, Value: value} }

// Del builds a delete Op.
func Del(key string) Op { return Op{Key: key, Delete: true} }

// Store is the one interface every backend implements.
//
// Contracts shared by all implementations (pinned by the conformance
// suite in conformance_test.go):
//
//   - Get returns a copy the caller owns; a missing key reports an
//     error satisfying errors.Is(err, ErrNotFound).
//   - Put stores a copy of value; the caller may reuse its buffer.
//   - Delete of a missing key is a no-op, not an error.
//   - Seek visits keys with the given prefix in ascending byte order
//     and stops early when fn returns false.  The value passed to fn
//     is owned by fn only for the duration of the call.
//   - Batch applies all ops atomically: after a crash either every op
//     in the batch is visible or none is.
//   - Every method on a closed store returns ErrClosed (Seek returns
//     it, Get wraps it).
type Store interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
	Delete(key string) error
	Seek(prefix string, fn func(key string, value []byte) bool) error
	Batch(ops []Op) error
	Close() error
}

// EnsureFormat checks the store's format version, writing it on a
// fresh store and refusing to open a store written by an incompatible
// future format.
func EnsureFormat(s Store) error {
	v, err := s.Get(KeyFormat)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return s.Put(KeyFormat, []byte(FormatVersion))
		}
		return fmt.Errorf("store: reading format version: %w", err)
	}
	if string(v) != FormatVersion {
		return fmt.Errorf("store: format version %q not supported (want %q)", v, FormatVersion)
	}
	return nil
}
