package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FileStore is the durable backend: one append-only log file plus an
// in-memory index, in the spirit of a bolt-style single-file store but
// built log-structured so every write is a single sequential append.
//
// On-disk layout:
//
//	magic    8 bytes  "FEM2STO1"
//	frame*   each frame is one atomic batch:
//	           4 bytes  big-endian payload length
//	           payload  sequence of ops (see below)
//	           4 bytes  big-endian CRC-32 (IEEE) of the payload
//
// Each op inside a payload:
//
//	1 byte   kind: 1 = put, 2 = delete
//	4 bytes  big-endian key length, then the key
//	4 bytes  big-endian value length, then the value   (puts only)
//
// A batch is written with a single write(2) call, so after a process
// crash (kill -9) the file ends either after a complete frame or in a
// torn one.  Open replays frames until the first length/CRC mismatch,
// truncates the tail there, and rebuilds the index — every batch is
// all-or-nothing, which is exactly the Batch contract.
//
// Deletes and overwrites leave dead bytes behind; when they outgrow
// the live data, Open compacts: it rewrites the live records (sorted,
// one frame per key, so the result is deterministic) to a temp file
// and renames it over the log.
//
// The index maps each live key to the offset of its value inside the
// file, so Get is one pread and memory stays proportional to keys,
// not values.
//
// Ownership comes in two modes.  In the default exclusive mode one
// process owns the file: open truncates torn tails and may compact.
// In shared mode (FileOpts.Shared, used by the cluster layer) several
// processes hold the same file: nothing truncates or compacts at open,
// every append takes an exclusive flock and re-tails the log first so
// concurrent writers from different processes cannot interleave, and
// Refresh lets a follower fold in frames the leader committed.  Only
// Seal — called once on takeover, when the old writer is known dead —
// truncates a torn tail.
type FileStore struct {
	mu     sync.RWMutex
	f      *os.File
	path   string
	size   int64 // end of last complete indexed frame = next append offset
	index  map[string]valueLoc
	live   int64 // bytes of live payload (keys + values still reachable)
	sync   bool  // fsync after every Batch (-store-sync)
	shared bool  // multi-process mode: flock writes, never truncate/compact
	closed bool
}

type valueLoc struct {
	off int64 // offset of the value bytes within the file
	len int32
}

const (
	fileMagic = "FEM2STO1"

	opPut    = 1
	opDelete = 2

	// compactMinGarbage is the least dead-byte count worth rewriting
	// the file for; below it Open leaves even 100%-garbage logs alone.
	compactMinGarbage = 1 << 16
)

// OpenFileStore opens (or creates) the store file at path, replays the
// log to rebuild the index, truncates any torn tail left by a crash,
// and compacts the log when dead bytes outweigh live ones.  Writes are
// not fsynced; see OpenFileStoreSync.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreSync(path, false)
}

// OpenFileStoreSync is OpenFileStore with the durability knob exposed:
// with sync true every Batch ends in an fsync, so a committed write
// survives not just a process crash but a machine crash.  The default
// is off — the CRC framing already guarantees a crash loses at most
// the unsynced tail, never corrupts the log — and fsync-per-batch
// trades orders of magnitude of write throughput for that last nine.
func OpenFileStoreSync(path string, sync bool) (*FileStore, error) {
	return OpenFileStoreWith(path, FileOpts{Sync: sync})
}

// FileOpts bundles the file-backend knobs beyond the path.
type FileOpts struct {
	// Sync fsyncs after every Batch; see OpenFileStoreSync.
	Sync bool
	// CompactAt overrides the dead-byte threshold that triggers
	// compaction at open: 0 keeps the default (64 KiB), a positive
	// value replaces it, a negative value suppresses compaction
	// entirely.  Tests use it to force or forbid compaction
	// deterministically.
	CompactAt int64
	// Shared opens the file for multi-process use: no truncation or
	// compaction at open, flock around every append.  Implies no
	// compaction regardless of CompactAt.
	Shared bool
}

// OpenFileStoreWith opens the store file at path with explicit opts.
func OpenFileStoreWith(path string, o FileOpts) (*FileStore, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	s, err := openFile(path, o.Shared)
	if err != nil {
		return nil, err
	}
	s.sync = o.Sync
	threshold := int64(compactMinGarbage)
	if o.CompactAt > 0 {
		threshold = o.CompactAt
	}
	garbage := s.size - int64(len(fileMagic)) - s.frameOverhead() - s.live
	if !o.Shared && o.CompactAt >= 0 && garbage >= threshold && garbage > s.live {
		if err := s.compact(); err != nil {
			s.f.Close()
			return nil, err
		}
	}
	return s, nil
}

func openFile(path string, shared bool) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s := &FileStore{f: f, path: path, shared: shared, index: map[string]valueLoc{}}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// frameOverhead estimates the framing + op-header bytes attributable
// to the live index, so the garbage computation compares payload to
// payload rather than charging headers as garbage.
func (s *FileStore) frameOverhead() int64 {
	// Per live key: op kind (1) + key len (4) + value len (4) plus a
	// share of frame header/CRC (8).  An estimate is fine — it only
	// biases when compaction triggers, not correctness.
	return int64(len(s.index)) * 17
}

// replay scans the log, rebuilding the index and truncating the file
// at the first incomplete or corrupt frame (the torn tail of a crash).
func (s *FileStore) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if info.Size() == 0 {
		if _, err := s.f.Write([]byte(fileMagic)); err != nil {
			return fmt.Errorf("store: writing magic: %w", err)
		}
		s.size = int64(len(fileMagic))
		return nil
	}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(s.f, magic); err != nil || string(magic) != fileMagic {
		return fmt.Errorf("store: %s is not a FEM-2 store file", s.path)
	}
	off := int64(len(fileMagic))
	var hdr [4]byte
	for {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			break // clean EOF or torn length header: truncate here
		}
		plen := int64(binary.BigEndian.Uint32(hdr[:]))
		frameEnd := off + 4 + plen + 4
		if frameEnd > info.Size() {
			break // torn payload
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+4); err != nil {
			break
		}
		if _, err := s.f.ReadAt(hdr[:], off+4+plen); err != nil {
			break
		}
		if binary.BigEndian.Uint32(hdr[:]) != crc32.ChecksumIEEE(payload) {
			break // torn or corrupt frame
		}
		if err := s.applyPayload(payload, off+4); err != nil {
			return err
		}
		off = frameEnd
	}
	if off != info.Size() && !s.shared {
		// Exclusive mode: the torn tail is ours, drop it.  Shared mode
		// leaves it — another live process may be mid-append, and only
		// Seal (with the old writer known dead) may truncate.
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	s.size = off
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking %s: %w", s.path, err)
	}
	return nil
}

// refreshLocked tails frames appended past s.size by another process
// sharing the file, folding them into the index.  It stops at the
// first incomplete or corrupt frame and never truncates.
func (s *FileStore) refreshLocked() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	off := s.size
	var hdr [4]byte
	for off+8 <= info.Size() {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		plen := int64(binary.BigEndian.Uint32(hdr[:]))
		frameEnd := off + 4 + plen + 4
		if frameEnd > info.Size() {
			break // torn payload: the writer may still be appending it
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+4); err != nil {
			break
		}
		if _, err := s.f.ReadAt(hdr[:], off+4+plen); err != nil {
			break
		}
		if binary.BigEndian.Uint32(hdr[:]) != crc32.ChecksumIEEE(payload) {
			break
		}
		if err := s.applyPayload(payload, off+4); err != nil {
			return err
		}
		off = frameEnd
	}
	s.size = off
	return nil
}

// Refresh folds in frames committed by another process sharing the
// file (shared mode only; exclusive stores are trivially fresh).
func (s *FileStore) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.shared {
		return nil
	}
	return s.refreshLocked()
}

// Seal is the takeover step: with the previous writer known dead, tail
// every complete frame it committed and truncate whatever torn tail
// its death left, so this process's appends start on a clean frame
// boundary.  No-op on exclusive stores (replay already sealed them).
func (s *FileStore) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.shared {
		return nil
	}
	if err := flockFile(s.f); err != nil {
		return fmt.Errorf("store: locking %s: %w", s.path, err)
	}
	defer funlockFile(s.f)
	if err := s.refreshLocked(); err != nil {
		return err
	}
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if info.Size() > s.size {
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: sealing torn tail of %s: %w", s.path, err)
		}
	}
	return nil
}

// applyPayload replays one frame's ops into the index.  base is the
// file offset of the payload's first byte.
func (s *FileStore) applyPayload(payload []byte, base int64) error {
	i := 0
	for i < len(payload) {
		if len(payload)-i < 5 {
			return fmt.Errorf("store: %s: malformed frame op", s.path)
		}
		kind := payload[i]
		klen := int(binary.BigEndian.Uint32(payload[i+1 : i+5]))
		i += 5
		if len(payload)-i < klen {
			return fmt.Errorf("store: %s: malformed frame key", s.path)
		}
		key := string(payload[i : i+klen])
		i += klen
		switch kind {
		case opDelete:
			if old, ok := s.index[key]; ok {
				s.live -= int64(len(key)) + int64(old.len)
				delete(s.index, key)
			}
		case opPut:
			if len(payload)-i < 4 {
				return fmt.Errorf("store: %s: malformed frame value length", s.path)
			}
			vlen := int(binary.BigEndian.Uint32(payload[i : i+4]))
			i += 4
			if len(payload)-i < vlen {
				return fmt.Errorf("store: %s: malformed frame value", s.path)
			}
			if old, ok := s.index[key]; ok {
				s.live -= int64(len(key)) + int64(old.len)
			}
			s.index[key] = valueLoc{off: base + int64(i), len: int32(vlen)}
			s.live += int64(len(key)) + int64(vlen)
			i += vlen
		default:
			return fmt.Errorf("store: %s: unknown op kind %d", s.path, kind)
		}
	}
	return nil
}

// encodeFrame serializes ops into one framed batch ready to append.
func encodeFrame(ops []Op) []byte {
	plen := 0
	for _, op := range ops {
		plen += 5 + len(op.Key)
		if !op.Delete {
			plen += 4 + len(op.Value)
		}
	}
	buf := make([]byte, 4+plen+4)
	binary.BigEndian.PutUint32(buf, uint32(plen))
	i := 4
	for _, op := range ops {
		if op.Delete {
			buf[i] = opDelete
		} else {
			buf[i] = opPut
		}
		binary.BigEndian.PutUint32(buf[i+1:], uint32(len(op.Key)))
		i += 5
		i += copy(buf[i:], op.Key)
		if !op.Delete {
			binary.BigEndian.PutUint32(buf[i:], uint32(len(op.Value)))
			i += 4
			i += copy(buf[i:], op.Value)
		}
	}
	binary.BigEndian.PutUint32(buf[4+plen:], crc32.ChecksumIEEE(buf[4:4+plen]))
	return buf
}

// Batch appends ops as one frame — a single write, so the batch is
// all-or-nothing across a crash — then updates the index.
func (s *FileStore) Batch(ops []Op) error {
	return s.batch("", nil, false, ops)
}

// BatchIf is Batch guarded by a compare on one key: the ops land iff
// the current value under key equals want (nil want = key absent).  In
// shared mode the compare happens after re-tailing the log under the
// file lock, so the check-then-append is atomic across processes, not
// just goroutines.
func (s *FileStore) BatchIf(key string, want []byte, ops []Op) error {
	return s.batch(key, want, true, ops)
}

func (s *FileStore) batch(key string, want []byte, cond bool, ops []Op) error {
	frame := encodeFrame(ops)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.shared {
		// Cross-process critical section: lock the file, fold in frames
		// other writers committed, and only then compare and append at
		// the true end of the log.
		if err := flockFile(s.f); err != nil {
			return fmt.Errorf("store: locking %s: %w", s.path, err)
		}
		defer funlockFile(s.f)
		if err := s.refreshLocked(); err != nil {
			return err
		}
	}
	if cond {
		ok, err := s.matchLocked(key, want)
		if err != nil {
			return err
		}
		if !ok {
			return ErrConflict
		}
	}
	if s.shared {
		// Anything past the last complete frame is a dead writer's torn
		// tail (a live one would hold the flock); overwrite it cleanly.
		if info, err := s.f.Stat(); err == nil && info.Size() > s.size {
			if err := s.f.Truncate(s.size); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
			}
		}
	}
	n, err := s.f.WriteAt(frame, s.size)
	if err != nil {
		// A short append leaves a torn frame; the next open truncates
		// it.  Do not advance size past what landed.
		s.size += int64(n)
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	base := s.size + 4
	s.size += int64(len(frame))
	if err := s.applyPayload(frame[4:len(frame)-4], base); err != nil {
		return err
	}
	if s.sync {
		// The frame is complete and indexed either way; a failed fsync
		// means the durability promise — not the write — broke, and the
		// caller gets to treat that as a store failure.
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync %s: %w", s.path, err)
		}
	}
	return nil
}

// matchLocked reports whether the current value under key equals want
// byte-for-byte (nil want matches an absent key).
func (s *FileStore) matchLocked(key string, want []byte) (bool, error) {
	loc, ok := s.index[key]
	if !ok {
		return want == nil, nil
	}
	if want == nil || int32(len(want)) != loc.len {
		return false, nil
	}
	cur := make([]byte, loc.len)
	if _, err := s.f.ReadAt(cur, loc.off); err != nil {
		return false, fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	return bytes.Equal(cur, want), nil
}

// Put stores value under key.
func (s *FileStore) Put(key string, value []byte) error {
	return s.Batch([]Op{Put(key, value)})
}

// Delete removes key; deleting a missing key writes nothing.
func (s *FileStore) Delete(key string) error {
	s.mu.RLock()
	_, ok := s.index[key]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return nil
	}
	return s.Batch([]Op{Del(key)})
}

// Get reads the value under key with one pread.
func (s *FileStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("store: key %q: %w", key, ErrNotFound)
	}
	out := make([]byte, loc.len)
	if _, err := s.f.ReadAt(out, loc.off); err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	return out, nil
}

// Seek visits keys with the given prefix in ascending byte order.
func (s *FileStore) Seek(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	locs := make([]valueLoc, len(keys))
	for i, k := range keys {
		locs[i] = s.index[k]
	}
	s.mu.RUnlock()
	for i, k := range keys {
		v := make([]byte, locs[i].len)
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return ErrClosed
		}
		_, err := s.f.ReadAt(v, locs[i].off)
		s.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", s.path, err)
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// compact rewrites the live records — sorted, one frame per key, so
// the output is deterministic for a given logical state — to a temp
// file and renames it over the log.  Called from Open with the store
// still private to the opener, so no locking.
func (s *FileStore) compact() error {
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tmp, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compacting %s: %w", s.path, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write([]byte(fileMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting %s: %w", s.path, err)
	}
	newIndex := make(map[string]valueLoc, len(keys))
	off := int64(len(fileMagic))
	for _, k := range keys {
		loc := s.index[k]
		v := make([]byte, loc.len)
		if _, err := s.f.ReadAt(v, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compacting %s: %w", s.path, err)
		}
		frame := encodeFrame([]Op{Put(k, v)})
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compacting %s: %w", s.path, err)
		}
		// Value sits after frame len (4) + op kind (1) + key len (4) +
		// key + value len (4).
		newIndex[k] = valueLoc{off: off + 4 + 5 + int64(len(k)) + 4, len: loc.len}
		off += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting %s: %w", s.path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compacting %s: %w", s.path, err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: compacting %s: %w", s.path, err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted %s: %w", s.path, err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking %s: %w", s.path, err)
	}
	s.f.Close()
	s.f = f
	s.index = newIndex
	s.size = off
	return nil
}

// Close flushes nothing (every write already hit the file) and closes
// the file handle.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	err := s.f.Close()
	s.index = nil
	if err != nil {
		return fmt.Errorf("store: closing %s: %w", s.path, err)
	}
	return nil
}
