package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Satellite: the compaction threshold is configuration, not a constant.
// A small CompactAt compacts a log the default 64 KiB floor would leave
// alone; a negative CompactAt leaves alone a log the default would
// rewrite.
func TestFileStoreCompactAtCustom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "small.db")
	s, _ := OpenFileStore(path)
	val := make([]byte, 1024)
	// 10 generations over 4 keys: ~36 KiB garbage — under the default
	// floor, over a 2 KiB one.
	for gen := 0; gen < 10; gen++ {
		for k := 0; k < 4; k++ {
			s.Put(fmt.Sprintf("key%d", k), val)
		}
	}
	s.Close()
	before, _ := os.Stat(path)

	s2, err := OpenFileStoreWith(path, FileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	unchanged, _ := os.Stat(path)
	if unchanged.Size() != before.Size() {
		t.Fatalf("default threshold compacted %d bytes of garbage (%d -> %d); the floor moved",
			before.Size(), before.Size(), unchanged.Size())
	}

	s3, err := OpenFileStoreWith(path, FileOpts{CompactAt: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size()/2 {
		t.Errorf("CompactAt=2048 did not compact: %d -> %d bytes", before.Size(), after.Size())
	}
	for k := 0; k < 4; k++ {
		if v, err := s3.Get(fmt.Sprintf("key%d", k)); err != nil || len(v) != len(val) {
			t.Fatalf("key%d after compaction: len=%d err=%v", k, len(v), err)
		}
	}
}

func TestFileStoreCompactAtSuppressed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nocompact.db")
	s, _ := OpenFileStore(path)
	val := make([]byte, 8192)
	// ~600 KiB of garbage: far past the default floor.
	for gen := 0; gen < 20; gen++ {
		for k := 0; k < 4; k++ {
			s.Put(fmt.Sprintf("key%d", k), val)
		}
	}
	s.Close()
	before, _ := os.Stat(path)

	s2, err := OpenFileStoreWith(path, FileOpts{CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	after, _ := os.Stat(path)
	if after.Size() != before.Size() {
		t.Fatalf("CompactAt=-1 still compacted: %d -> %d bytes", before.Size(), after.Size())
	}

	// The garbage was real: a default open rewrites it.
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s3.Close()
	compacted, _ := os.Stat(path)
	if compacted.Size() >= before.Size()/2 {
		t.Errorf("default open did not compact the control log: %d -> %d bytes",
			before.Size(), compacted.Size())
	}
}

// sharedPair opens two shared-mode handles on one store file — two
// daemons of a cluster, in-process.
func sharedPair(t *testing.T) (a, b *FileStore) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shared.db")
	var err error
	if a, err = OpenFileStoreWith(path, FileOpts{Shared: true}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if b, err = OpenFileStoreWith(path, FileOpts{Shared: true}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

// Shared mode: one handle's committed writes become visible to the
// other after Refresh, and only after (each handle indexes the log
// independently).
func TestFileStoreSharedRefreshVisibility(t *testing.T) {
	a, b := sharedPair(t)
	if err := a.Put("k", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b saw a's write without Refresh: %v", err)
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v, err := b.Get("k"); err != nil || string(v) != "from-a" {
		t.Fatalf("b after Refresh: %q, %v", v, err)
	}
	// And the other direction: b appends, a refreshes.
	if err := b.Put("k2", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v, err := a.Get("k2"); err != nil || string(v) != "from-b" {
		t.Fatalf("a after Refresh: %q, %v", v, err)
	}
}

// Shared BatchIf is the cluster's arbitration primitive: the compare
// runs against the *file's* current state under the file lock, so a
// handle that has not refreshed since the other wrote still loses the
// race — exactly what keeps two contenders from both taking a lease.
func TestFileStoreSharedBatchIfArbitrates(t *testing.T) {
	a, b := sharedPair(t)
	if err := a.BatchIf("lease", nil, []Op{Put("lease", []byte("1"))}); err != nil {
		t.Fatalf("a acquires: %v", err)
	}
	// b, fully refreshed, takes over.
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := b.BatchIf("lease", []byte("1"), []Op{Put("lease", []byte("2"))}); err != nil {
		t.Fatalf("b takes over: %v", err)
	}
	// a still believes the lease says "1"; its conditional write must
	// lose even though its in-memory index agrees with the stale want.
	err := a.BatchIf("lease", []byte("1"), []Op{Put("lease", []byte("3"))})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("a's stale CAS = %v, want ErrConflict", err)
	}
	if v, _ := a.Get("lease"); string(v) != "2" {
		t.Fatalf("lease = %q after failed CAS, want 2 (a refreshed under the lock)", v)
	}
}

// Seal is the takeover step: the dead leader's torn tail — bytes past
// the last complete frame, which a live writer would still be holding
// the file lock over — is truncated so the new leader appends cleanly.
func TestFileStoreSealTruncatesDeadWritersTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seal.db")
	a, err := OpenFileStoreWith(path, FileOpts{Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("good")); err != nil {
		t.Fatal(err)
	}
	b, err := OpenFileStoreWith(path, FileOpts{Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Close() // the "leader" dies...
	// ...mid-append: raw junk lands past the last complete frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := os.Stat(path)
	if _, err := f.Write(bytes.Repeat([]byte{0xEE}, 13)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := b.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() != sealed.Size() {
		t.Fatalf("Seal left %d bytes, want %d (torn tail gone)", after.Size(), sealed.Size())
	}
	if v, err := b.Get("k"); err != nil || string(v) != "good" {
		t.Fatalf("k after Seal: %q, %v", v, err)
	}
	if err := b.Put("k2", []byte("new-leader")); err != nil {
		t.Fatalf("write after Seal: %v", err)
	}
	// The new write is a well-formed frame: a third handle replays both.
	c, err := OpenFileStoreWith(path, FileOpts{Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, err := c.Get("k2"); err != nil || string(v) != "new-leader" {
		t.Fatalf("k2 via fresh handle: %q, %v", v, err)
	}
}

// MemStore.BatchIf pins the compare semantics the cluster relies on:
// nil want means "key absent", and a present-but-empty value is not
// absent.
func TestMemStoreBatchIf(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.BatchIf("k", nil, []Op{Put("k", []byte("v1"))}); err != nil {
		t.Fatalf("create-if-absent: %v", err)
	}
	if err := s.BatchIf("k", nil, []Op{Put("k", []byte("v2"))}); !errors.Is(err, ErrConflict) {
		t.Fatalf("create over existing = %v, want ErrConflict", err)
	}
	if err := s.BatchIf("k", []byte("wrong"), []Op{Put("k", []byte("v2"))}); !errors.Is(err, ErrConflict) {
		t.Fatalf("wrong want = %v, want ErrConflict", err)
	}
	if err := s.BatchIf("k", []byte("v1"), []Op{Put("k", []byte{})}); err != nil {
		t.Fatalf("matching want: %v", err)
	}
	// k now holds an empty (non-nil on the wire) value: want nil must
	// not match it, want empty must.
	if err := s.BatchIf("k", nil, []Op{Put("k", []byte("x"))}); !errors.Is(err, ErrConflict) {
		t.Fatalf("nil want matched empty value; absent and empty conflated")
	}
	if err := s.BatchIf("k", []byte{}, []Op{Del("k")}); err != nil {
		t.Fatalf("empty want over empty value: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("Del op inside BatchIf did not apply")
	}
}
