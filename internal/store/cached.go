package store

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultCacheEntries bounds the CachedStore read cache.
const DefaultCacheEntries = 4096

// CachedStore is a write-through cache in front of any backend, in the
// role of neo-go's MemCachedStore: hot Gets never touch the backend,
// and because every write goes through to the backend first, the cache
// can never be ahead of durable state — a crash loses nothing that was
// acknowledged.
//
// Seek always delegates to the backend (which the write-through policy
// keeps coherent), so iteration order and visibility match the backend
// exactly.
type CachedStore struct {
	backend Store

	mu     sync.Mutex
	cache  map[string][]byte
	fifo   []string // insertion order for bounded eviction
	limit  int
	hits   int64
	misses int64
	closed bool

	// obs mirrors of the ad-hoc stats above, plus latency histograms;
	// nil no-op sinks until SetObs (see internal/obs).
	mHits, mMisses     *obs.Counter
	hGet, hPut, hBatch *obs.Histogram
}

// NewCached wraps backend with a read cache of at most limit entries
// (DefaultCacheEntries when limit <= 0).
func NewCached(backend Store, limit int) *CachedStore {
	if limit <= 0 {
		limit = DefaultCacheEntries
	}
	return &CachedStore{backend: backend, cache: map[string][]byte{}, limit: limit}
}

// Backend returns the wrapped store.
func (s *CachedStore) Backend() Store { return s.backend }

// SetObs routes the cache's hit/miss stats and operation latencies
// through reg — the same numbers Stats reports, finally reachable from
// the binaries.  Nil reg reverts to no-op sinks.
func (s *CachedStore) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mHits = reg.Counter(obs.StoreCacheHits)
	s.mMisses = reg.Counter(obs.StoreCacheMisses)
	s.hGet = reg.Histogram(obs.StoreGetLatency)
	s.hPut = reg.Histogram(obs.StorePutLatency)
	s.hBatch = reg.Histogram(obs.StoreBatchLatency)
}

// Stats reports cache hits and misses since open.
func (s *CachedStore) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Get returns the cached value, filling the cache from the backend on
// a miss.  The returned slice is the caller's copy.
func (s *CachedStore) Get(key string) ([]byte, error) {
	start := time.Now()
	defer func() { s.hGet.Observe(time.Since(start)) }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if v, ok := s.cache[key]; ok {
		s.hits++
		s.mHits.Inc()
		out := make([]byte, len(v))
		copy(out, v)
		s.mu.Unlock()
		return out, nil
	}
	s.misses++
	s.mMisses.Inc()
	s.mu.Unlock()
	v, err := s.backend.Get(key)
	if err != nil {
		return nil, err
	}
	s.fill(key, v)
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Put writes through to the backend, then updates the cache.
func (s *CachedStore) Put(key string, value []byte) error {
	start := time.Now()
	defer func() { s.hPut.Observe(time.Since(start)) }()
	return s.Batch([]Op{Put(key, value)})
}

// Delete writes through to the backend, then drops the cache entry.
func (s *CachedStore) Delete(key string) error {
	return s.Batch([]Op{Del(key)})
}

// Batch writes through to the backend atomically, then applies the
// same ops to the cache.
func (s *CachedStore) Batch(ops []Op) error {
	start := time.Now()
	defer func() { s.hBatch.Observe(time.Since(start)) }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := s.backend.Batch(ops); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range ops {
		if op.Delete {
			s.dropLocked(op.Key)
			continue
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.fillLocked(op.Key, v)
	}
	return nil
}

// BatchIf writes through to the backend's conditional batch, then
// applies the ops to the cache only when the compare won.  A conflict
// leaves the cache untouched — the backend rejected the ops, so there
// is nothing to mirror.
func (s *CachedStore) BatchIf(key string, want []byte, ops []Op) error {
	start := time.Now()
	defer func() { s.hBatch.Observe(time.Since(start)) }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := BatchIf(s.backend, key, want, ops); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range ops {
		if op.Delete {
			s.dropLocked(op.Key)
			continue
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.fillLocked(op.Key, v)
	}
	return nil
}

// Refresh folds in state another process committed to the shared
// backend, then drops the whole cache: entries cached before the
// refresh may now be stale, and refilling on demand is cheaper than
// diffing.
func (s *CachedStore) Refresh() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := Refresh(s.backend); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.cache = map[string][]byte{}
		s.fifo = s.fifo[:0]
	}
	return nil
}

// Seal runs the backend's takeover step, then drops the cache like
// Refresh does.
func (s *CachedStore) Seal() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := Seal(s.backend); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.cache = map[string][]byte{}
		s.fifo = s.fifo[:0]
	}
	return nil
}

// Seek delegates to the backend; write-through keeps it coherent.
func (s *CachedStore) Seek(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	return s.backend.Seek(prefix, fn)
}

// Close closes the backend and drops the cache.
func (s *CachedStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.cache = nil
	s.fifo = nil
	s.mu.Unlock()
	return s.backend.Close()
}

func (s *CachedStore) fill(key string, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	owned := make([]byte, len(v))
	copy(owned, v)
	s.fillLocked(key, owned)
}

// fillLocked inserts an owned value, evicting the oldest insertion
// when the cache is full.  FIFO is deliberate: cheap, deterministic,
// and the working set (models + recent jobs) fits the default bound.
func (s *CachedStore) fillLocked(key string, owned []byte) {
	if _, ok := s.cache[key]; !ok {
		for len(s.fifo) >= s.limit {
			old := s.fifo[0]
			s.fifo = s.fifo[1:]
			delete(s.cache, old)
		}
		s.fifo = append(s.fifo, key)
	}
	s.cache[key] = owned
}

func (s *CachedStore) dropLocked(key string) {
	if _, ok := s.cache[key]; !ok {
		return
	}
	delete(s.cache, key)
	for i, k := range s.fifo {
		if k == key {
			s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
			break
		}
	}
}
