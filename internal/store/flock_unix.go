//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockFile takes an exclusive advisory lock on f, blocking until the
// holder releases it.  Shared-mode FileStore brackets every append
// with it so two daemons on one store file cannot interleave writes.
func flockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

func funlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
