package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/errs"
)

// Reopen must read back everything a previous instance wrote —
// the reopen-reads-own-writes leg of the conformance contract.
func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "re.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k010")
	s.Put("k020", []byte("rewritten"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("k010"); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("deleted key resurrected after reopen: %v", err)
	}
	if v, err := s2.Get("k020"); err != nil || string(v) != "rewritten" {
		t.Errorf("k020 = %q, %v after reopen", v, err)
	}
	n := 0
	s2.Seek("k", func(string, []byte) bool { n++; return true })
	if n != 49 {
		t.Errorf("reopened store has %d keys, want 49", n)
	}
}

// A torn tail — the partial frame a kill -9 mid-write leaves — must be
// truncated on open, preserving every complete frame before it.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	for _, cut := range []int64{1, 3, 7, 15} { // chop mid-frame at several depths
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.db", cut))
		s, err := OpenFileStore(path)
		if err != nil {
			t.Fatal(err)
		}
		s.Put("good", []byte("survives"))
		// An atomic batch that will be half-destroyed below.
		s.Batch([]Op{Put("b1", []byte("x")), Put("b2", []byte("y"))})
		s.Close()

		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenFileStore(path)
		if err != nil {
			t.Fatalf("open after %d-byte tear: %v", cut, err)
		}
		if v, err := s2.Get("good"); err != nil || string(v) != "survives" {
			t.Fatalf("after tear %d: good = %q, %v", cut, v, err)
		}
		// The torn batch must vanish atomically: b1 and b2 together.
		_, e1 := s2.Get("b1")
		_, e2 := s2.Get("b2")
		if errors.Is(e1, errs.ErrNotFound) != errors.Is(e2, errs.ErrNotFound) {
			t.Fatalf("after tear %d: torn batch applied partially (b1: %v, b2: %v)", cut, e1, e2)
		}
		s2.Close()
	}
}

// Corrupting bytes inside the last frame (not just truncating) must
// fail its CRC and drop it.
func TestFileStoreCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.db")
	s, _ := OpenFileStore(path)
	s.Put("keep", []byte("ok"))
	s.Put("doomed", []byte("corrupted-below"))
	s.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xde, 0xad}, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	if v, err := s2.Get("keep"); err != nil || string(v) != "ok" {
		t.Errorf("keep = %q, %v", v, err)
	}
	if _, err := s2.Get("doomed"); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("corrupt frame survived: %v", err)
	}
}

// Compaction on open: a log dominated by dead bytes is rewritten to
// just its live records, and the result reads identically.
func TestFileStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.db")
	s, _ := OpenFileStore(path)
	big := make([]byte, 8192)
	for i := range big {
		big[i] = byte(i)
	}
	// 40 generations of overwrites of the same 4 keys: ~39/40 garbage.
	for gen := 0; gen < 40; gen++ {
		for k := 0; k < 4; k++ {
			s.Put(fmt.Sprintf("key%d", k), append(big, byte(gen), byte(k)))
		}
	}
	s.Close()
	before, _ := os.Stat(path)

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open-with-compaction: %v", err)
	}
	defer s2.Close()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size()/2 {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	for k := 0; k < 4; k++ {
		v, err := s2.Get(fmt.Sprintf("key%d", k))
		if err != nil || len(v) != len(big)+2 || v[len(v)-2] != 39 || v[len(v)-1] != byte(k) {
			t.Fatalf("key%d after compaction: len=%d err=%v", k, len(v), err)
		}
	}
	// Writes after compaction land correctly.
	if err := s2.Put("post", []byte("compaction")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Get("post"); string(v) != "compaction" {
		t.Fatal("write after compaction lost")
	}
}

// A file that isn't a store must be refused, not misparsed.
func TestFileStoreBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	os.WriteFile(path, []byte("#!/bin/sh\necho hi\n"), 0o644)
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("opened a non-store file")
	}
}
