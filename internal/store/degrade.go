package store

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrDegraded is returned by writes while the guard holds the store in
// read-only mode.  The server maps it to the wire code "degraded".
var ErrDegraded = errors.New("store: degraded (read-only)")

// GuardDefaults are the zero-value substitutions for GuardOpts.
const (
	// GuardDefaultThreshold is how many consecutive write failures trip
	// the guard.  One flaky sector should not take a daemon read-only;
	// three in a row is no longer flaky.
	GuardDefaultThreshold = 3
	// GuardDefaultProbeInterval is how often the background probe
	// retries a write while degraded.
	GuardDefaultProbeInterval = 250 * time.Millisecond
)

// GuardOpts parameterizes NewGuard.  Zero values take the defaults
// above.
type GuardOpts struct {
	// Threshold is the consecutive-write-failure count that trips the
	// guard into degraded mode.
	Threshold int
	// ProbeInterval is the cadence of the background recovery probe.
	// Negative disables the background probe entirely (tests drive
	// recovery through Probe instead).
	ProbeInterval time.Duration
	// OnChange, when non-nil, is called (off the caller's lock, on the
	// goroutine that flipped the state) with true when the guard trips
	// and false when it recovers.  The daemon logs from it.
	OnChange func(degraded bool)
}

// Guard wraps a backend with the graceful-degradation policy: when
// writes keep failing, stop crashing the layers above and turn the
// store read-only instead.
//
//   - A write error (Put/Delete/Batch, excluding ErrClosed) counts one
//     consecutive failure; a success resets the count.  At Threshold
//     consecutive failures the guard trips: it is now *degraded*.
//   - While degraded, writes fail fast with ErrDegraded without
//     touching the backend; reads pass through untouched (the cache
//     and the backend's index still serve).
//   - A background probe retries a tiny write (KeyProbe) every
//     ProbeInterval; the first success re-arms writes and the guard
//     reports healthy again.  Probe does the same synchronously for
//     deterministic tests.
//
// Guard sits between the backend and the cache: the cache's
// write-through contract already refuses to cache a value the backend
// rejected, so a degraded write leaves cache and backend coherent.
type Guard struct {
	inner Store
	opts  GuardOpts

	mu       sync.Mutex
	fails    int // consecutive write failures while healthy
	degraded bool
	probes   int64 // probe attempts while degraded (diagnostics)
	trips    int64 // how many times the guard has tripped
	closed   bool
	stop     chan struct{} // closes the probe goroutine, non-nil while probing
	// trippedAt is when the current degraded episode began (zero while
	// healthy); recovery folds the episode into mDegradedSecs.
	trippedAt time.Time

	// obs mirrors (SetObs): trip count, live degraded gauge, and whole
	// seconds spent degraded across completed episodes.  Nil no-op sinks
	// until routed.
	mTrips        *obs.Counter
	mDegradedSecs *obs.Counter
	gDegraded     *obs.Gauge
}

// NewGuard wraps inner with the degradation policy.
func NewGuard(inner Store, opts GuardOpts) *Guard {
	if opts.Threshold <= 0 {
		opts.Threshold = GuardDefaultThreshold
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = GuardDefaultProbeInterval
	}
	return &Guard{inner: inner, opts: opts}
}

// SetObs routes the guard's health metrics through reg: the trip count
// that previously only Trips could read, a live degraded gauge, and the
// seconds spent degraded (completed episodes; an episode still open
// shows on the gauge, not the counter).  Nil reg reverts to no-op sinks.
func (g *Guard) SetObs(reg *obs.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mTrips = reg.Counter(obs.StoreGuardTrips)
	g.mDegradedSecs = reg.Counter(obs.StoreDegradedSeconds)
	g.gDegraded = reg.Gauge(obs.StoreDegraded)
	if g.degraded {
		g.gDegraded.Set(1)
	}
}

// Degraded reports whether the guard currently refuses writes.
func (g *Guard) Degraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded
}

// Trips reports how many times the guard has entered degraded mode.
func (g *Guard) Trips() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.trips
}

// Get passes reads through: degraded mode is read-only, not read-never.
func (g *Guard) Get(key string) ([]byte, error) { return g.inner.Get(key) }

// Seek passes through like Get.
func (g *Guard) Seek(prefix string, fn func(key string, value []byte) bool) error {
	return g.inner.Seek(prefix, fn)
}

func (g *Guard) Put(key string, value []byte) error {
	return g.write(func() error { return g.inner.Put(key, value) })
}

func (g *Guard) Delete(key string) error {
	return g.write(func() error { return g.inner.Delete(key) })
}

func (g *Guard) Batch(ops []Op) error {
	return g.write(func() error { return g.inner.Batch(ops) })
}

// BatchIf runs the conditional batch under the write policy.  A
// conflict is an outcome, not a store-health failure — see write.
func (g *Guard) BatchIf(key string, want []byte, ops []Op) error {
	return g.write(func() error { return BatchIf(g.inner, key, want, ops) })
}

// Refresh passes through like the reads: folding in another process's
// committed frames works fine on a degraded store.
func (g *Guard) Refresh() error { return Refresh(g.inner) }

// Seal passes through for the takeover sequence.
func (g *Guard) Seal() error { return Seal(g.inner) }

// write runs one backend write under the policy.
func (g *Guard) write(op func() error) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	if g.degraded {
		g.mu.Unlock()
		return fmt.Errorf("%w: writes refused until the backend recovers", ErrDegraded)
	}
	g.mu.Unlock()

	err := op()

	g.mu.Lock()
	defer g.mu.Unlock()
	if err == nil {
		g.fails = 0
		return nil
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrNotFound) || errors.Is(err, ErrConflict) {
		return err // lifecycle, lookup, and lost-race outcomes are not store health
	}
	g.fails++
	if !g.degraded && g.fails >= g.opts.Threshold {
		g.tripLocked()
	}
	return err
}

// tripLocked flips to degraded and starts the probe.  Caller holds mu.
func (g *Guard) tripLocked() {
	g.degraded = true
	g.trips++
	g.fails = 0
	g.trippedAt = time.Now()
	g.mTrips.Inc()
	g.gDegraded.Set(1)
	if g.opts.ProbeInterval > 0 && !g.closed {
		g.stop = make(chan struct{})
		go g.probeLoop(g.stop, g.trips)
	}
	if f := g.opts.OnChange; f != nil {
		go f(true)
	}
}

// probeLoop retries the probe write until it lands, the guard closes,
// or a newer trip supersedes this loop.
func (g *Guard) probeLoop(stop chan struct{}, gen int64) {
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if g.Probe() {
				return
			}
			g.mu.Lock()
			stale := g.closed || g.trips != gen
			g.mu.Unlock()
			if stale {
				return
			}
		}
	}
}

// Probe attempts one recovery write immediately and returns whether the
// guard is healthy afterwards.  While degraded it writes a counter
// value under KeyProbe straight to the backend; on success the guard
// re-arms.  On a healthy guard it is a no-op returning true.
func (g *Guard) Probe() bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return false
	}
	if !g.degraded {
		g.mu.Unlock()
		return true
	}
	g.probes++
	n := g.probes
	g.mu.Unlock()

	err := g.inner.Put(KeyProbe, []byte(strconv.FormatInt(n, 10)))

	g.mu.Lock()
	if err != nil || g.closed || !g.degraded {
		healthy := !g.degraded && !g.closed
		g.mu.Unlock()
		return healthy
	}
	g.degraded = false
	g.fails = 0
	if !g.trippedAt.IsZero() {
		g.mDegradedSecs.Add(int64(time.Since(g.trippedAt) / time.Second))
		g.trippedAt = time.Time{}
	}
	g.gDegraded.Set(0)
	if g.stop != nil {
		close(g.stop)
		g.stop = nil
	}
	g.mu.Unlock()
	if f := g.opts.OnChange; f != nil {
		go f(false)
	}
	return true
}

// Close stops the probe and closes the backend.
func (g *Guard) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.closed = true
	if g.stop != nil {
		close(g.stop)
		g.stop = nil
	}
	g.mu.Unlock()
	return g.inner.Close()
}
