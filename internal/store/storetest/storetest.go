// Package storetest is the executable store contract: the conformance
// suite every store.Store implementation must pass, packaged so any
// backend — the built-in three, a degradation guard, a fault-injection
// wrapper with its weather disarmed — can be held to the identical
// standard from its own test file.
package storetest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/errs"
	"repro/internal/store"
)

// Run drives the full conformance suite against the implementation
// `open` builds.  open is called once per sub-test, so each property is
// checked on a fresh store.
func Run(t *testing.T, open func(t *testing.T) store.Store) {
	t.Run("get-put-delete", func(t *testing.T) { GetPutDelete(t, open(t)) })
	t.Run("seek-prefix-order", func(t *testing.T) { SeekPrefixOrder(t, open(t)) })
	t.Run("batch-atomic", func(t *testing.T) { Batch(t, open(t)) })
	t.Run("closed", func(t *testing.T) { Closed(t, open(t)) })
	t.Run("caller-owns-buffers", func(t *testing.T) { BufferOwnership(t, open(t)) })
}

// GetPutDelete pins the basic read/write contract: missing keys report
// ErrNotFound, overwrites land, empty values round-trip, deletes of
// missing keys are no-ops.
func GetPutDelete(t *testing.T, s store.Store) {
	defer s.Close()
	if _, err := s.Get("missing"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := s.Get("k"); err != nil || string(v) != "v1" {
		t.Fatalf("Get(k) = %q, %v, want v1", v, err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if v, _ := s.Get("k"); string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q, want v2", v)
	}
	// Empty values round-trip (they are puts, not deletes).
	if err := s.Put("empty", nil); err != nil {
		t.Fatalf("Put empty: %v", err)
	}
	if v, err := s.Get("empty"); err != nil || len(v) != 0 {
		t.Fatalf("Get(empty) = %q, %v, want empty value", v, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of missing key = %v, want nil", err)
	}
}

// SeekPrefixOrder pins prefix iteration: ascending byte order, early
// stop, no sibling-family leakage, empty prefix sees everything.
func SeekPrefixOrder(t *testing.T, s store.Store) {
	defer s.Close()
	// Inserted out of order; Seek must return ascending byte order.
	for _, k := range []string{"m:plate", "m:beam", "s:beam:00000002", "s:beam:00000001", "j:0001", "m:arch"} {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	var got []string
	if err := s.Seek("m:", func(k string, v []byte) bool {
		if string(v) != "v-"+k {
			t.Errorf("Seek value for %s = %q", k, v)
		}
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	want := []string{"m:arch", "m:beam", "m:plate"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Seek(m:) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	s.Seek("m:", func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Seek early-stop visited %d keys, want 1", n)
	}
	// Prefix with trailing separator does not leak sibling families.
	var sol []string
	s.Seek("s:beam:", func(k string, _ []byte) bool { sol = append(sol, k); return true })
	want = []string{"s:beam:00000001", "s:beam:00000002"}
	if fmt.Sprint(sol) != fmt.Sprint(want) {
		t.Fatalf("Seek(s:beam:) = %v, want %v", sol, want)
	}
	// Empty prefix sees everything.
	n = 0
	s.Seek("", func(string, []byte) bool { n++; return true })
	if n != 6 {
		t.Fatalf("Seek(\"\") visited %d keys, want 6", n)
	}
}

// Batch pins batch semantics: all ops of a successful batch are
// visible together.
func Batch(t *testing.T, s store.Store) {
	defer s.Close()
	s.Put("a", []byte("old"))
	s.Put("gone", []byte("x"))
	err := s.Batch([]store.Op{
		store.Put("a", []byte("new")),
		store.Put("b", []byte("2")),
		store.Del("gone"),
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if v, _ := s.Get("a"); string(v) != "new" {
		t.Fatalf("a = %q after batch", v)
	}
	if v, _ := s.Get("b"); string(v) != "2" {
		t.Fatalf("b = %q after batch", v)
	}
	if _, err := s.Get("gone"); !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("gone still present after batch delete: %v", err)
	}
}

// Closed pins the lifecycle contract: every method on a closed store
// reports ErrClosed, including a second Close.
func Closed(t *testing.T, s store.Store) {
	s.Put("k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Get after close = %v, want ErrClosed", err)
	}
	if err := s.Put("k", nil); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if err := s.Delete("k"); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Delete after close = %v, want ErrClosed", err)
	}
	if err := s.Seek("", func(string, []byte) bool { return true }); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Seek after close = %v, want ErrClosed", err)
	}
	if err := s.Batch([]store.Op{store.Put("k", nil)}); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Batch after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, store.ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

// BufferOwnership pins that the store copies on both sides of the API:
// callers may scribble on Put buffers and Get results freely.
func BufferOwnership(t *testing.T, s store.Store) {
	defer s.Close()
	buf := []byte("original")
	s.Put("k", buf)
	copy(buf, "CLOBBER!")
	if v, _ := s.Get("k"); string(v) != "original" {
		t.Fatalf("store kept a reference to the caller's Put buffer: %q", v)
	}
	v1, _ := s.Get("k")
	copy(v1, "SCRIBBLE")
	if v2, _ := s.Get("k"); string(v2) != "original" {
		t.Fatalf("mutating a Get result corrupted the store: %q", v2)
	}
}
