package arch

import (
	"sort"
	"sync"
)

// Network models the common communication network joining clusters.  Each
// ordered cluster pair has a link that serializes transfers: a message
// occupies the link for words*CyclesPerWord cycles, and arrives Latency
// cycles after it clears the link.  Each link keeps its schedule as a
// list of busy intervals, so a transfer departing at time t claims the
// earliest idle gap at or after t — concurrent computations (independent
// solves, multiple users) interleave their messages through the idle gaps
// exactly as they would on the shared hardware.  Intra-cluster transfers
// move through shared memory instead and never touch the network.
type Network struct {
	latency       int64
	cyclesPerWord int64

	mu sync.Mutex
	// busy[s][d] is the s->d link's schedule: disjoint busy intervals
	// sorted by start time.
	busy [][][]interval
	// msgs/words count traffic per ordered pair for the communication
	// pattern reports.
	msgs  [][]int64
	words [][]int64
}

type interval struct{ start, end int64 }

// NewNetwork builds a network over n clusters with the given costs.
func NewNetwork(n int, latency, cyclesPerWord int64) *Network {
	nw := &Network{latency: latency, cyclesPerWord: cyclesPerWord}
	nw.busy = make([][][]interval, n)
	nw.msgs = make([][]int64, n)
	nw.words = make([][]int64, n)
	for i := 0; i < n; i++ {
		nw.busy[i] = make([][]interval, n)
		nw.msgs[i] = make([]int64, n)
		nw.words[i] = make([]int64, n)
	}
	return nw
}

// Transfer sends words from cluster src to cluster dst with the given
// departure time and returns the arrival time at dst's input queue.  The
// transfer claims the link's earliest idle gap of sufficient length at or
// after the departure time.
func (nw *Network) Transfer(src, dst int, words int64, depart int64) int64 {
	if src == dst {
		// Same cluster: staging through shared memory, no network.
		return depart + words*1 // one cycle per word through memory port
	}
	occupy := words * nw.cyclesPerWord
	nw.mu.Lock()
	defer nw.mu.Unlock()
	sched := nw.busy[src][dst]
	start := depart
	idx := len(sched)
	if occupy > 0 {
		// Find the insertion point — the first interval ending after
		// the candidate start (binary search; intervals are disjoint
		// and sorted) — then walk forward until a gap fits.
		idx = sort.Search(len(sched), func(i int) bool { return sched[i].end > start })
		for idx < len(sched) {
			gapEnd := sched[idx].start
			if start+occupy <= gapEnd {
				break // fits before interval idx
			}
			if sched[idx].end > start {
				start = sched[idx].end
			}
			idx++
		}
		sched = append(sched, interval{})
		copy(sched[idx+1:], sched[idx:])
		sched[idx] = interval{start: start, end: start + occupy}
		nw.busy[src][dst] = sched
	}
	nw.msgs[src][dst]++
	nw.words[src][dst] += words
	return start + occupy + nw.latency
}

// Messages returns the message count sent from cluster src to dst.
func (nw *Network) Messages(src, dst int) int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.msgs[src][dst]
}

// Words returns the word count sent from cluster src to dst.
func (nw *Network) Words(src, dst int) int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.words[src][dst]
}

// TotalMessages returns the machine-wide inter-cluster message count.
func (nw *Network) TotalMessages() int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var t int64
	for i := range nw.msgs {
		for j := range nw.msgs[i] {
			t += nw.msgs[i][j]
		}
	}
	return t
}

// TotalWords returns the machine-wide inter-cluster word count.
func (nw *Network) TotalWords() int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var t int64
	for i := range nw.words {
		for j := range nw.words[i] {
			t += nw.words[i][j]
		}
	}
	return t
}

// TrafficMatrix returns a copy of the per-pair message counts — the
// communication pattern the FEM-2 simulations were designed to expose.
func (nw *Network) TrafficMatrix() [][]int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([][]int64, len(nw.msgs))
	for i := range nw.msgs {
		out[i] = make([]int64, len(nw.msgs[i]))
		copy(out[i], nw.msgs[i])
	}
	return out
}

// reset clears link schedules and traffic counts.
func (nw *Network) reset() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := range nw.busy {
		for j := range nw.busy[i] {
			nw.busy[i][j] = nil
			nw.msgs[i][j] = 0
			nw.words[i][j] = 0
		}
	}
}
