package arch

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 3 // kernel + 2 workers
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Clusters: 0, PEsPerCluster: 2, SharedMemoryWords: 1},
		{Clusters: 1, PEsPerCluster: 1, SharedMemoryWords: 1},
		{Clusters: 1, PEsPerCluster: 2, SharedMemoryWords: 0},
		{Clusters: 1, PEsPerCluster: 2, SharedMemoryWords: 1, NetLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := smallConfig()
	if cfg.TotalPEs() != 6 || cfg.Workers() != 4 {
		t.Errorf("TotalPEs=%d Workers=%d", cfg.TotalPEs(), cfg.Workers())
	}
}

func TestPEChargeSyncAndStats(t *testing.T) {
	p := &PE{ID: 1}
	if p.State() != PEIdle {
		t.Errorf("initial state = %v", p.State())
	}
	if got := p.Charge(100); got != 100 {
		t.Errorf("Charge = %d", got)
	}
	if got := p.Sync(50); got != 100 {
		t.Errorf("Sync backwards moved clock to %d", got)
	}
	if got := p.Sync(250); got != 250 {
		t.Errorf("Sync = %d", got)
	}
	if got := p.RunAt(300, 10); got != 310 {
		t.Errorf("RunAt = %d", got)
	}
	if got := p.RunAt(100, 10); got != 320 {
		t.Errorf("RunAt with early ready = %d", got)
	}
	if p.BusyCycles() != 120 {
		t.Errorf("BusyCycles = %d, want 120", p.BusyCycles())
	}
	if p.JobsDone() != 3 {
		t.Errorf("JobsDone = %d, want 3", p.JobsDone())
	}
}

func TestPEFailureSemantics(t *testing.T) {
	p := &PE{ID: 0}
	p.fail()
	if !p.Failed() {
		t.Fatal("fail did not stick")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Charge on failed PE did not panic")
			}
		}()
		p.Charge(1)
	}()
	p.repair()
	if p.Failed() {
		t.Error("repair did not restore PE")
	}
	p.Charge(1) // must not panic now
}

func TestPENegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative charge did not panic")
		}
	}()
	(&PE{}).Charge(-1)
}

func TestSharedMemoryAllocFree(t *testing.T) {
	m := NewSharedMemory(100)
	h1, err := m.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(50); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("overcommit allowed: %v", err)
	}
	h2, err := m.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 100 || m.HighWater() != 100 || m.Live() != 2 {
		t.Errorf("Used=%d HighWater=%d Live=%d", m.Used(), m.HighWater(), m.Live())
	}
	if err := m.Free(h1); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 40 || m.HighWater() != 100 {
		t.Errorf("after free Used=%d HighWater=%d", m.Used(), m.HighWater())
	}
	if err := m.Free(h1); err == nil {
		t.Error("double free accepted")
	}
	if err := m.Free(h2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(0); err == nil {
		t.Error("zero-word alloc accepted")
	}
	if m.Capacity() != 100 {
		t.Errorf("Capacity = %d", m.Capacity())
	}
}

// Property: any sequence of allocs and frees keeps used = sum of live
// allocations and never exceeds capacity.
func TestQuickSharedMemoryInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewSharedMemory(1 << 16)
		var handles []int64
		var live int64
		for _, s := range sizes {
			w := int64(s%512) + 1
			if h, err := m.Alloc(w); err == nil {
				handles = append(handles, h)
				live += w
			}
			if len(handles) > 4 {
				// free the oldest
				h := handles[0]
				handles = handles[1:]
				var freed int64
				freed = m.Used()
				if err := m.Free(h); err != nil {
					return false
				}
				live -= freed - m.Used()
			}
			if m.Used() > m.Capacity() || m.Used() != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNetworkIntraClusterBypassesLinks(t *testing.T) {
	nw := NewNetwork(2, 100, 4)
	arr := nw.Transfer(0, 0, 10, 1000)
	if arr != 1010 {
		t.Errorf("intra-cluster arrival = %d, want 1010", arr)
	}
	if nw.TotalMessages() != 0 {
		t.Error("intra-cluster transfer counted as network message")
	}
}

func TestNetworkLatencyAndBandwidth(t *testing.T) {
	nw := NewNetwork(2, 100, 4)
	arr := nw.Transfer(0, 1, 10, 0)
	if arr != 10*4+100 {
		t.Errorf("arrival = %d, want 140", arr)
	}
	if nw.Messages(0, 1) != 1 || nw.Words(0, 1) != 10 {
		t.Errorf("traffic counts wrong: %d msgs %d words", nw.Messages(0, 1), nw.Words(0, 1))
	}
}

func TestNetworkLinkSerializes(t *testing.T) {
	nw := NewNetwork(2, 100, 4)
	a1 := nw.Transfer(0, 1, 10, 0) // occupies link [0,40), arrives 140
	a2 := nw.Transfer(0, 1, 10, 0) // must wait: occupies [40,80), arrives 180
	if a1 != 140 || a2 != 180 {
		t.Errorf("serialized arrivals = %d, %d; want 140, 180", a1, a2)
	}
	// The reverse link is independent.
	a3 := nw.Transfer(1, 0, 10, 0)
	if a3 != 140 {
		t.Errorf("reverse link arrival = %d, want 140", a3)
	}
}

func TestNetworkGapInsertionOverlapsIndependentTraffic(t *testing.T) {
	nw := NewNetwork(2, 100, 4)
	// A late transfer books [1000,1040).
	late := nw.Transfer(0, 1, 10, 1000)
	if late != 1140 {
		t.Fatalf("late arrival = %d, want 1140", late)
	}
	// An early transfer from an independent computation departs at 0:
	// the gap [0,1000) is idle, so it must NOT wait behind the late one.
	early := nw.Transfer(0, 1, 10, 0)
	if early != 140 {
		t.Errorf("early arrival = %d, want 140 (ghost queueing behind later traffic)", early)
	}
	// A transfer that does not fit in the remaining gap slides past the
	// booked interval: depart 990, needs [990,1030) which overlaps
	// [1000,1040) -> starts at 1040.
	squeezed := nw.Transfer(0, 1, 10, 990)
	if squeezed != 1040+40+100 {
		t.Errorf("squeezed arrival = %d, want 1180", squeezed)
	}
	// A small transfer still fits the gap [40,1000).
	fits := nw.Transfer(0, 1, 10, 40)
	if fits != 40+40+100 {
		t.Errorf("gap-fit arrival = %d, want 180", fits)
	}
}

func TestNetworkZeroWordTransferLatencyOnly(t *testing.T) {
	nw := NewNetwork(2, 100, 4)
	if arr := nw.Transfer(0, 1, 0, 50); arr != 150 {
		t.Errorf("zero-word arrival = %d, want 150", arr)
	}
}

func TestNetworkTrafficMatrixIsCopy(t *testing.T) {
	nw := NewNetwork(2, 1, 1)
	nw.Transfer(0, 1, 5, 0)
	m := nw.TrafficMatrix()
	m[0][1] = 99
	if nw.Messages(0, 1) != 1 {
		t.Error("TrafficMatrix exposed internal state")
	}
}

func TestClusterDeliverPicksEarliestWorker(t *testing.T) {
	m := MustNew(smallConfig())
	cl := m.Cluster(0)
	// Load worker 1 so worker 2 is earliest.
	cl.Workers[0].Charge(1000)
	done, w, err := cl.Deliver(0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w != cl.Workers[1] {
		t.Errorf("picked worker %d, want the idle one", w.ID)
	}
	// Kernel decodes at max(0, arrival)=0 → 50; worker runs 50→150.
	if done != 150 {
		t.Errorf("completion = %d, want 150", done)
	}
	if cl.Delivered() != 1 {
		t.Errorf("Delivered = %d", cl.Delivered())
	}
}

func TestClusterDeliverKernelSerializesDecodes(t *testing.T) {
	m := MustNew(smallConfig())
	cl := m.Cluster(0)
	d1, _, _ := cl.Deliver(0, 50, 0)
	d2, _, _ := cl.Deliver(0, 50, 0)
	if d1 != 50 || d2 != 100 {
		t.Errorf("kernel decode completions = %d, %d; want 50, 100", d1, d2)
	}
}

func TestClusterDeliverAllWorkersFailed(t *testing.T) {
	m := MustNew(smallConfig())
	cl := m.Cluster(0)
	for _, w := range cl.Workers {
		w.fail()
	}
	if _, _, err := cl.Deliver(0, 1, 1); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("want ErrNoWorkers, got %v", err)
	}
	if cl.Rerouted() != 1 {
		t.Errorf("Rerouted = %d", cl.Rerouted())
	}
}

func TestMachineSendCrossCluster(t *testing.T) {
	cfg := smallConfig()
	m := MustNew(cfg)
	m.Metrics = metrics.NewCollector()
	m.Trace = trace.New()
	done, w, err := m.Send(1 /* PE in cluster 0 */, 1, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster != 1 {
		t.Errorf("worker cluster = %d, want 1", w.Cluster)
	}
	// arrival = 10*4+200 = 240; decode 240→290; work 290→390.
	if done != 390 {
		t.Errorf("completion = %d, want 390", done)
	}
	if got := m.Metrics.Get(metrics.LevelARCH, metrics.CtrMsgs); got != 1 {
		t.Errorf("ARCH msgs = %d", got)
	}
	if m.Trace.Len() != 1 {
		t.Errorf("trace events = %d", m.Trace.Len())
	}
}

func TestMachineSendReroutesAroundDeadCluster(t *testing.T) {
	m := MustNew(smallConfig())
	for _, w := range m.Cluster(1).Workers {
		m.FailPE(w.ID)
	}
	_, w, err := m.Send(1, 1, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster != 0 {
		t.Errorf("rerouted to cluster %d, want 0", w.Cluster)
	}
}

func TestMachineSendFailsWhenAllWorkersDead(t *testing.T) {
	m := MustNew(smallConfig())
	for _, p := range m.PEs() {
		if !p.Kernel {
			m.FailPE(p.ID)
		}
	}
	if _, _, err := m.Send(0, 1, 1, 0, 1); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("want ErrNoWorkers, got %v", err)
	}
}

func TestMachineSendDeadKernelSkipsCluster(t *testing.T) {
	m := MustNew(smallConfig())
	m.FailPE(m.Cluster(1).Kernel.ID)
	_, w, err := m.Send(1, 1, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster != 0 {
		t.Errorf("message landed on cluster %d with dead kernel", w.Cluster)
	}
}

func TestMachineSendBadArgs(t *testing.T) {
	m := MustNew(smallConfig())
	if _, _, err := m.Send(-1, 0, 1, 0, 1); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := m.Send(0, 99, 1, 0, 1); err == nil {
		t.Error("bad destination accepted")
	}
}

func TestComputeAndMemoryTouch(t *testing.T) {
	m := MustNew(smallConfig())
	m.Metrics = metrics.NewCollector()
	if done := m.Compute(1, 100); done != 100 {
		t.Errorf("Compute = %d", done)
	}
	if done := m.MemoryTouch(1, 50); done != 150 {
		t.Errorf("MemoryTouch = %d", done)
	}
	if got := m.Metrics.Get(metrics.LevelARCH, metrics.CtrCycles); got != 150 {
		t.Errorf("cycles = %d", got)
	}
}

func TestRemoteFetchLocalVsRemote(t *testing.T) {
	m := MustNew(smallConfig())
	// PE 1 is in cluster 0. Local fetch: memory cost only.
	local := m.RemoteFetch(1, 0, 100)
	if local != 100 {
		t.Errorf("local fetch = %d, want 100", local)
	}
	// Remote fetch from cluster 1: network latency applies and the PE
	// clock advances to the arrival.
	before := m.PE(1).Clock()
	remote := m.RemoteFetch(1, 1, 100)
	want := before + 100*m.Config().NetCyclesPerWord + m.Config().NetLatency
	if remote != want {
		t.Errorf("remote fetch = %d, want %d", remote, want)
	}
	if m.PE(1).Clock() != want {
		t.Errorf("PE clock after fetch = %d, want %d", m.PE(1).Clock(), want)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	m := MustNew(smallConfig())
	m.PE(1).Charge(100)
	m.PE(2).Charge(500)
	done := m.Barrier([]int{1, 2})
	want := 500 + m.Config().NetLatency
	if done != want {
		t.Errorf("barrier done = %d, want %d", done, want)
	}
	if m.PE(1).Clock() != want || m.PE(2).Clock() != want {
		t.Error("barrier did not align clocks")
	}
}

func TestPlaceWorkerRoundRobinAcrossClusters(t *testing.T) {
	m := MustNew(smallConfig())
	w1, err := m.PlaceWorker()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m.PlaceWorker()
	if err != nil {
		t.Fatal(err)
	}
	if w1.Cluster == w2.Cluster {
		t.Errorf("consecutive placements landed on cluster %d twice", w1.Cluster)
	}
}

func TestPlaceWorkerSkipsFailedAndErrsWhenNone(t *testing.T) {
	m := MustNew(smallConfig())
	for _, w := range m.Cluster(0).Workers {
		m.FailPE(w.ID)
	}
	w, err := m.PlaceWorker()
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster != 1 {
		t.Errorf("placement on dead cluster %d", w.Cluster)
	}
	for _, p := range m.PEs() {
		if !p.Kernel {
			m.FailPE(p.ID)
		}
	}
	if _, err := m.PlaceWorker(); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("want ErrNoWorkers, got %v", err)
	}
}

func TestPlaceWorkerInCluster(t *testing.T) {
	m := MustNew(smallConfig())
	w, err := m.PlaceWorkerInCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster != 1 || w.Kernel {
		t.Errorf("placement %+v", w)
	}
	if _, err := m.PlaceWorkerInCluster(9); err == nil {
		t.Error("bad cluster accepted")
	}
	for _, wk := range m.Cluster(0).Workers {
		m.FailPE(wk.ID)
	}
	if _, err := m.PlaceWorkerInCluster(0); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("dead cluster placement: %v", err)
	}
}

func TestLiveWorkersExcludesKernelAndFailed(t *testing.T) {
	m := MustNew(smallConfig())
	if got := len(m.LiveWorkers()); got != 4 {
		t.Fatalf("LiveWorkers = %d, want 4", got)
	}
	m.FailPE(m.Cluster(0).Workers[0].ID)
	if got := len(m.LiveWorkers()); got != 3 {
		t.Errorf("LiveWorkers after fault = %d, want 3", got)
	}
}

func TestFailRepairBounds(t *testing.T) {
	m := MustNew(smallConfig())
	if err := m.FailPE(-1); err == nil {
		t.Error("FailPE(-1) accepted")
	}
	if err := m.RepairPE(999); err == nil {
		t.Error("RepairPE(999) accepted")
	}
	if err := m.FailPE(1); err != nil {
		t.Fatal(err)
	}
	if err := m.RepairPE(1); err != nil {
		t.Fatal(err)
	}
	if m.PE(1).Failed() {
		t.Error("repair did not restore")
	}
}

func TestMakespanUtilizationReset(t *testing.T) {
	m := MustNew(smallConfig())
	if m.Utilization() != 0 {
		t.Error("idle machine utilization should be 0")
	}
	m.Compute(1, 100)
	m.Compute(2, 300)
	if m.Makespan() != 300 {
		t.Errorf("Makespan = %d", m.Makespan())
	}
	if m.TotalBusy() != 400 {
		t.Errorf("TotalBusy = %d", m.TotalBusy())
	}
	u := m.Utilization()
	want := 400.0 / (300.0 * 6.0)
	if u < want-1e-12 || u > want+1e-12 {
		t.Errorf("Utilization = %g, want %g", u, want)
	}
	m.FailPE(5)
	m.Reset()
	if m.Makespan() != 0 || m.TotalBusy() != 0 {
		t.Error("Reset did not clear clocks")
	}
	if !m.PE(5).Failed() {
		t.Error("Reset cleared failure state; fault experiments need it preserved")
	}
}

func TestConcurrentSendsAllComplete(t *testing.T) {
	m := MustNew(DefaultConfig())
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = m.Send(0, i%m.Config().Clusters, 8, 0, 100)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("send %d failed: %v", i, err)
		}
	}
	var delivered int64
	for _, c := range m.Clusters() {
		delivered += c.Delivered()
	}
	if delivered != n {
		t.Errorf("delivered = %d, want %d", delivered, n)
	}
}

func TestReportMentionsClusters(t *testing.T) {
	m := MustNew(smallConfig())
	m.Compute(1, 10)
	r := m.Report()
	for _, want := range []string{"machine:", "network:", "cluster 0", "cluster 1"} {
		if !strings.Contains(r, want) {
			t.Errorf("Report missing %q:\n%s", want, r)
		}
	}
}

func TestPEStateString(t *testing.T) {
	if PEIdle.String() != "idle" || PEBusy.String() != "busy" || PEFailed.String() != "failed" {
		t.Error("PEState strings wrong")
	}
	if !strings.Contains(PEState(9).String(), "9") {
		t.Error("unknown state string")
	}
}

// Property: makespan never decreases as more work is added, and equals the
// max PE clock.
func TestQuickMakespanMonotone(t *testing.T) {
	f := func(work []uint16) bool {
		m := MustNew(smallConfig())
		var prev int64
		for i, w := range work {
			m.Compute(1+(i%4), int64(w))
			span := m.Makespan()
			if span < prev {
				return false
			}
			prev = span
		}
		var mx int64
		for _, p := range m.PEs() {
			if c := p.Clock(); c > mx {
				mx = c
			}
		}
		return prev == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
