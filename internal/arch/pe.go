package arch

import (
	"fmt"
	"sync"
)

// PEState is the life-cycle state of a processing element.
type PEState int

// PE states.  Failed PEs are isolated by reconfiguration and receive no
// further work, per the paper's requirement to "provide reconfigurability
// to isolate faulty hardware components".
const (
	PEIdle PEState = iota
	PEBusy
	PEFailed
)

// String names the state.
func (s PEState) String() string {
	switch s {
	case PEIdle:
		return "idle"
	case PEBusy:
		return "busy"
	case PEFailed:
		return "failed"
	default:
		return fmt.Sprintf("PEState(%d)", int(s))
	}
}

// PE is one processing element.  Each PE carries a local cycle clock; the
// machine's makespan is the maximum clock over all PEs.
type PE struct {
	// ID is the machine-wide PE index.
	ID int
	// Cluster is the index of the owning cluster.
	Cluster int
	// Kernel marks the PE that runs the operating system kernel for its
	// cluster.
	Kernel bool

	mu       sync.Mutex
	state    PEState
	clock    int64
	busy     int64 // total cycles spent computing (for utilization)
	jobsDone int64
}

// State returns the PE's current state.
func (p *PE) State() PEState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Failed reports whether the PE has been isolated.
func (p *PE) Failed() bool { return p.State() == PEFailed }

// Clock returns the PE's local cycle time.
func (p *PE) Clock() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock
}

// BusyCycles returns the total cycles the PE spent on work.
func (p *PE) BusyCycles() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy
}

// JobsDone returns how many work items the PE has completed.
func (p *PE) JobsDone() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobsDone
}

// Charge advances the PE's clock by cycles of compute and returns the new
// clock value.  Charging a failed PE panics: the scheduler must never
// route work to an isolated component.
func (p *PE) Charge(cycles int64) int64 {
	if cycles < 0 {
		panic(fmt.Sprintf("arch: negative charge %d on PE %d", cycles, p.ID))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == PEFailed {
		panic(fmt.Sprintf("arch: charge on failed PE %d", p.ID))
	}
	p.clock += cycles
	p.busy += cycles
	p.jobsDone++
	return p.clock
}

// Sync advances the PE's clock to at least t (a data or message
// dependency: the PE waited).  It returns the new clock.
func (p *PE) Sync(t int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t > p.clock {
		p.clock = t
	}
	return p.clock
}

// RunAt models receiving a work item that becomes available at time ready
// and costs cycles: the clock advances to max(clock, ready)+cycles.  It
// returns the completion time.
func (p *PE) RunAt(ready, cycles int64) int64 {
	if cycles < 0 {
		panic(fmt.Sprintf("arch: negative work %d on PE %d", cycles, p.ID))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == PEFailed {
		panic(fmt.Sprintf("arch: work routed to failed PE %d", p.ID))
	}
	if ready > p.clock {
		p.clock = ready
	}
	p.clock += cycles
	p.busy += cycles
	p.jobsDone++
	return p.clock
}

// fail marks the PE failed (called via Machine.FailPE so scheduling state
// stays consistent).
func (p *PE) fail() {
	p.mu.Lock()
	p.state = PEFailed
	p.mu.Unlock()
}

// repair returns a failed PE to service.
func (p *PE) repair() {
	p.mu.Lock()
	if p.state == PEFailed {
		p.state = PEIdle
	}
	p.mu.Unlock()
}

// reset zeroes clock and statistics, preserving failure state.
func (p *PE) reset() {
	p.mu.Lock()
	p.clock, p.busy, p.jobsDone = 0, 0, 0
	p.mu.Unlock()
}
