package arch

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoWorkers is returned when a cluster has no live worker PE and the
// machine has nowhere to reroute.
var ErrNoWorkers = errors.New("arch: no live worker PEs")

// Cluster is a set of PEs organized around a shared memory.  PE index 0
// within the cluster is the kernel PE, which fields incoming messages and
// assigns available PEs to process them.
type Cluster struct {
	// ID is the cluster index.
	ID int
	// Kernel runs the operating system kernel for the cluster.
	Kernel *PE
	// Workers are the remaining PEs; any available one can process any
	// message from the input queue.
	Workers []*PE
	// Memory is the cluster's shared memory.
	Memory *SharedMemory

	mu        sync.Mutex
	delivered int64 // messages fielded by the kernel
	rerouted  int64 // messages this cluster had to bounce elsewhere
}

// Delivered returns how many messages the cluster's kernel has fielded.
func (c *Cluster) Delivered() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Rerouted returns how many messages were bounced to another cluster
// because no local worker was live.
func (c *Cluster) Rerouted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rerouted
}

// liveWorkers returns the cluster's non-failed workers.
func (c *Cluster) liveWorkers() []*PE {
	var out []*PE
	for _, w := range c.Workers {
		if !w.Failed() {
			out = append(out, w)
		}
	}
	return out
}

// LiveWorkerCount returns the number of non-failed worker PEs.
func (c *Cluster) LiveWorkerCount() int { return len(c.liveWorkers()) }

// earliestWorker picks the live worker with the smallest clock, modelling
// "assigns available PE's to process them".  Ties break on PE ID so the
// choice is deterministic.
func (c *Cluster) earliestWorker() *PE {
	var best *PE
	var bestClock int64
	for _, w := range c.Workers {
		if w.Failed() {
			continue
		}
		clk := w.Clock()
		if best == nil || clk < bestClock || (clk == bestClock && w.ID < best.ID) {
			best, bestClock = w, clk
		}
	}
	return best
}

// Deliver models a message arriving in the cluster's input queue at time
// arrival: the kernel PE decodes it (decodeCycles) and assigns the work
// (workCycles) to the earliest available live worker.  It returns the
// completion time and the chosen worker.
func (c *Cluster) Deliver(arrival, decodeCycles, workCycles int64) (int64, *PE, error) {
	if c.Kernel.Failed() {
		return 0, nil, fmt.Errorf("arch: cluster %d kernel PE failed", c.ID)
	}
	// Serialize kernel dispatch decisions so worker choice is
	// consistent under concurrent delivery.
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.earliestWorker()
	if w == nil {
		c.rerouted++
		return 0, nil, fmt.Errorf("%w in cluster %d", ErrNoWorkers, c.ID)
	}
	decoded := c.Kernel.RunAt(arrival, decodeCycles)
	done := w.RunAt(decoded, workCycles)
	c.delivered++
	return done, w, nil
}

// PEs returns all PEs of the cluster, kernel first.
func (c *Cluster) PEs() []*PE {
	out := make([]*PE, 0, 1+len(c.Workers))
	out = append(out, c.Kernel)
	return append(out, c.Workers...)
}
