package arch

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfMemory is returned when a cluster's shared memory cannot satisfy
// an allocation.
var ErrOutOfMemory = errors.New("arch: cluster shared memory exhausted")

// SharedMemory models one cluster's shared memory: a capacity in words
// with dynamic allocation, tracking the high-water mark so experiments can
// report the storage requirement of an application ("large storage
// requirements; dynamic allocation").
type SharedMemory struct {
	mu        sync.Mutex
	capacity  int64
	used      int64
	highWater int64
	allocs    map[int64]int64 // handle -> words
	next      int64
}

// NewSharedMemory returns an empty memory of the given word capacity.
func NewSharedMemory(capacity int64) *SharedMemory {
	return &SharedMemory{capacity: capacity, allocs: map[int64]int64{}}
}

// Alloc reserves words of storage, returning an opaque handle.
func (m *SharedMemory) Alloc(words int64) (int64, error) {
	if words <= 0 {
		return 0, fmt.Errorf("arch: allocation of %d words", words)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.used+words > m.capacity {
		return 0, fmt.Errorf("%w: %d used + %d requested > %d capacity",
			ErrOutOfMemory, m.used, words, m.capacity)
	}
	m.used += words
	if m.used > m.highWater {
		m.highWater = m.used
	}
	h := m.next
	m.next++
	m.allocs[h] = words
	return h, nil
}

// Free releases the allocation named by handle.
func (m *SharedMemory) Free(handle int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	words, ok := m.allocs[handle]
	if !ok {
		return fmt.Errorf("arch: free of unknown handle %d", handle)
	}
	delete(m.allocs, handle)
	m.used -= words
	return nil
}

// Used returns the words currently allocated.
func (m *SharedMemory) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// HighWater returns the maximum words ever simultaneously allocated.
func (m *SharedMemory) HighWater() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.highWater
}

// Capacity returns the configured capacity in words.
func (m *SharedMemory) Capacity() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacity
}

// Live returns the number of outstanding allocations.
func (m *SharedMemory) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.allocs)
}

// reset drops every allocation and statistic.
func (m *SharedMemory) reset() {
	m.mu.Lock()
	m.used, m.highWater = 0, 0
	m.allocs = map[int64]int64{}
	m.mu.Unlock()
}
