package arch

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Machine is a configured FEM-2 hardware instance: clusters joined by the
// common communication network, with machine-wide fault handling and
// statistics.
type Machine struct {
	cfg      Config
	clusters []*Cluster
	pes      []*PE // flat index: cluster*PEsPerCluster + local
	network  *Network

	// Metrics receives ARCH-level counters when non-nil.
	Metrics *metrics.Collector
	// Trace receives ARCH-level events when non-nil.
	Trace *trace.Trace

	mu     sync.Mutex
	nextRR int // round-robin cursor for cross-cluster placement
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, network: NewNetwork(cfg.Clusters, cfg.NetLatency, cfg.NetCyclesPerWord)}
	for ci := 0; ci < cfg.Clusters; ci++ {
		cl := &Cluster{ID: ci, Memory: NewSharedMemory(cfg.SharedMemoryWords)}
		for pi := 0; pi < cfg.PEsPerCluster; pi++ {
			pe := &PE{ID: ci*cfg.PEsPerCluster + pi, Cluster: ci, Kernel: pi == 0}
			m.pes = append(m.pes, pe)
			if pi == 0 {
				cl.Kernel = pe
			} else {
				cl.Workers = append(cl.Workers, pe)
			}
		}
		m.clusters = append(m.clusters, cl)
	}
	return m, nil
}

// MustNew builds a machine and panics on configuration errors (test and
// example convenience).
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Clusters returns the machine's clusters.
func (m *Machine) Clusters() []*Cluster { return m.clusters }

// Cluster returns cluster i.
func (m *Machine) Cluster(i int) *Cluster { return m.clusters[i] }

// PE returns the PE with the given machine-wide ID.
func (m *Machine) PE(id int) *PE { return m.pes[id] }

// PEs returns every PE in ID order.
func (m *Machine) PEs() []*PE { return m.pes }

// Network returns the communication network.
func (m *Machine) Network() *Network { return m.network }

// Send models one message of words payload words sent from srcPE's cluster
// to cluster dst, departing at time depart: network transfer, kernel
// decode, and workCycles of processing on an available worker.  If dst has
// no live workers the machine reconfigures around the fault by routing to
// the next live cluster.  It returns the completion time and the worker
// that processed the message.
func (m *Machine) Send(srcPE int, dst int, words, depart, workCycles int64) (int64, *PE, error) {
	if srcPE < 0 || srcPE >= len(m.pes) {
		return 0, nil, fmt.Errorf("arch: bad source PE %d", srcPE)
	}
	if dst < 0 || dst >= len(m.clusters) {
		return 0, nil, fmt.Errorf("arch: bad destination cluster %d", dst)
	}
	src := m.pes[srcPE].Cluster
	tried := 0
	for tried < len(m.clusters) {
		target := (dst + tried) % len(m.clusters)
		cl := m.clusters[target]
		if cl.Kernel.Failed() || cl.LiveWorkerCount() == 0 {
			tried++
			continue
		}
		arrival := m.network.Transfer(src, target, words, depart)
		done, w, err := cl.Deliver(arrival, m.cfg.KernelDecodeCycles, workCycles)
		if err != nil {
			tried++
			continue
		}
		m.Metrics.Add(metrics.LevelARCH, metrics.CtrMsgs, 1)
		m.Metrics.Add(metrics.LevelARCH, metrics.CtrMsgWords, words)
		m.Metrics.Add(metrics.LevelARCH, metrics.CtrCycles, workCycles)
		m.Trace.Record(trace.Event{
			Clock: done, Level: metrics.LevelARCH, Kind: "msg",
			Src: src, Dst: target, Words: int(words),
		})
		return done, w, nil
	}
	return 0, nil, fmt.Errorf("%w anywhere in the machine", ErrNoWorkers)
}

// Compute charges cycles of local computation to the given PE at its
// current clock and returns the completion time.
func (m *Machine) Compute(peID int, cycles int64) int64 {
	done := m.pes[peID].Charge(cycles)
	m.Metrics.Add(metrics.LevelARCH, metrics.CtrCycles, cycles)
	return done
}

// MemoryTouch charges the cost of moving words through the PE's cluster
// shared memory and returns the completion time.
func (m *Machine) MemoryTouch(peID int, words int64) int64 {
	return m.Compute(peID, words*m.cfg.MemCyclesPerWord)
}

// RemoteFetch models peID pulling words from cluster srcCluster's shared
// memory through the network (the hardware realisation of a remote window
// access): the request departs at the PE's clock, the payload crosses the
// network, and the PE resumes at arrival.  It returns the arrival time.
func (m *Machine) RemoteFetch(peID int, srcCluster int, words int64) int64 {
	pe := m.pes[peID]
	if pe.Cluster == srcCluster {
		return m.MemoryTouch(peID, words)
	}
	depart := pe.Clock()
	arrival := m.network.Transfer(srcCluster, pe.Cluster, words, depart)
	pe.Sync(arrival)
	m.Metrics.Add(metrics.LevelARCH, metrics.CtrMsgs, 1)
	m.Metrics.Add(metrics.LevelARCH, metrics.CtrMsgWords, words)
	m.Trace.Record(trace.Event{
		Clock: arrival, Level: metrics.LevelARCH, Kind: "fetch",
		Src: srcCluster, Dst: pe.Cluster, Words: int(words),
	})
	return arrival
}

// Barrier synchronizes the listed PEs: all clocks advance to the maximum
// plus the cost of one network latency (the synchronisation exchange).
// It returns the barrier completion time.
func (m *Machine) Barrier(peIDs []int) int64 {
	var maxClock int64
	for _, id := range peIDs {
		if c := m.pes[id].Clock(); c > maxClock {
			maxClock = c
		}
	}
	done := maxClock + m.cfg.NetLatency
	for _, id := range peIDs {
		m.pes[id].Sync(done)
	}
	m.Trace.Record(trace.Event{
		Clock: done, Level: metrics.LevelARCH, Kind: "barrier",
		Src: -1, Dst: -1, Words: 0, Detail: fmt.Sprintf("%d PEs", len(peIDs)),
	})
	return done
}

// PlaceWorker picks a live worker PE for new work, spreading placements
// round-robin over clusters (the kernel-level placement policy).  It
// returns an error only when every worker in the machine has failed.
func (m *Machine) PlaceWorker() (*PE, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < len(m.clusters); i++ {
		cl := m.clusters[(m.nextRR+i)%len(m.clusters)]
		if w := cl.earliestWorker(); w != nil {
			m.nextRR = (cl.ID + 1) % len(m.clusters)
			return w, nil
		}
	}
	return nil, ErrNoWorkers
}

// PlaceWorkerInCluster picks the earliest live worker within one cluster
// (remote procedure calls execute where the window's data lives).
func (m *Machine) PlaceWorkerInCluster(cluster int) (*PE, error) {
	if cluster < 0 || cluster >= len(m.clusters) {
		return nil, fmt.Errorf("arch: no cluster %d", cluster)
	}
	if w := m.clusters[cluster].earliestWorker(); w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("%w in cluster %d", ErrNoWorkers, cluster)
}

// LiveWorkers returns every non-failed worker PE in ID order.
func (m *Machine) LiveWorkers() []*PE {
	var out []*PE
	for _, p := range m.pes {
		if !p.Kernel && !p.Failed() {
			out = append(out, p)
		}
	}
	return out
}

// FailPE isolates the PE with the given ID, modelling a hardware fault.
// Failing a kernel PE takes its whole cluster out of service for message
// delivery (the machine reroutes around it).
func (m *Machine) FailPE(id int) error {
	if id < 0 || id >= len(m.pes) {
		return fmt.Errorf("arch: FailPE: no PE %d", id)
	}
	m.pes[id].fail()
	m.Trace.Recordf(metrics.LevelARCH, "fault", id, -1, 0, "PE %d isolated", id)
	return nil
}

// RepairPE returns a failed PE to service.
func (m *Machine) RepairPE(id int) error {
	if id < 0 || id >= len(m.pes) {
		return fmt.Errorf("arch: RepairPE: no PE %d", id)
	}
	m.pes[id].repair()
	return nil
}

// Makespan returns the maximum PE clock — the simulated completion time of
// everything run so far.
func (m *Machine) Makespan() int64 {
	var mx int64
	for _, p := range m.pes {
		if c := p.Clock(); c > mx {
			mx = c
		}
	}
	return mx
}

// TotalBusy returns the sum of busy cycles over all PEs.
func (m *Machine) TotalBusy() int64 {
	var t int64
	for _, p := range m.pes {
		t += p.BusyCycles()
	}
	return t
}

// Utilization returns TotalBusy / (Makespan × live PEs), the standard
// parallel efficiency measure; it returns 0 for an idle machine.
func (m *Machine) Utilization() float64 {
	span := m.Makespan()
	if span == 0 {
		return 0
	}
	var live int64
	for _, p := range m.pes {
		if !p.Failed() {
			live++
		}
	}
	if live == 0 {
		return 0
	}
	return float64(m.TotalBusy()) / float64(span*live)
}

// Reset zeroes all PE clocks, memory, network occupancy and statistics,
// preserving the failure pattern (the fault experiments re-run workloads
// on a degraded machine).
func (m *Machine) Reset() {
	for _, p := range m.pes {
		p.reset()
	}
	for _, c := range m.clusters {
		c.Memory.reset()
	}
	m.network.reset()
}

// Report summarises the machine state for the experiment harness.
func (m *Machine) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: %d clusters × %d PEs, makespan %d cycles, utilization %.2f\n",
		m.cfg.Clusters, m.cfg.PEsPerCluster, m.Makespan(), m.Utilization())
	fmt.Fprintf(&b, "network: %d messages, %d words\n", m.network.TotalMessages(), m.network.TotalWords())
	for _, c := range m.clusters {
		fmt.Fprintf(&b, "  cluster %d: %d live workers, %d delivered, mem high-water %d\n",
			c.ID, c.LiveWorkerCount(), c.Delivered(), c.Memory.HighWater())
	}
	return b.String()
}
