// Package arch simulates the FEM-2 hardware architecture: clusters of
// processing elements organized around a shared memory, with sets of
// clusters communicating through a common communication network.  Within
// each cluster one PE runs the operating system kernel, which fields
// incoming messages and assigns available PEs to process them; messages
// arriving in the input queue of any cluster can be processed by any
// available PE.
//
// The FEM-2 hardware was never fabricated, so per the design method the
// architecture is evaluated by simulation.  The simulator here is a
// logical-clock cost model: every PE carries its own cycle clock, compute
// charges advance the owning PE's clock, and network transfers carry a
// latency plus per-word cost and serialize on the link between a cluster
// pair.  The makespan of a computation is the maximum PE clock, so
// parallel work on distinct PEs overlaps exactly as on the proposed
// hardware, while the upper virtual machine layers run as ordinary Go
// code.  All behaviour is deterministic given a deterministic driver.
package arch

import (
	"errors"
	"fmt"
)

// Config describes a FEM-2 machine configuration.  The paper calls for
// easy extension to larger configurations, so every dimension is a
// parameter.
type Config struct {
	// Clusters is the number of PE clusters.
	Clusters int
	// PEsPerCluster counts the processing elements in each cluster,
	// including the kernel PE (so each cluster has PEsPerCluster-1
	// workers).
	PEsPerCluster int
	// SharedMemoryWords is the capacity of each cluster's shared
	// memory, in words.
	SharedMemoryWords int64
	// NetLatency is the fixed cycle cost of any inter-cluster message.
	NetLatency int64
	// NetCyclesPerWord is the additional per-word transfer cost.
	NetCyclesPerWord int64
	// MemCyclesPerWord is the cost of moving a word within a cluster's
	// shared memory (local window access, message staging).
	MemCyclesPerWord int64
	// KernelDecodeCycles is the kernel PE's cost to decode one message
	// and assign it to a worker.
	KernelDecodeCycles int64
}

// DefaultConfig returns the baseline configuration used by the experiments:
// 4 clusters of 8 PEs (1 kernel + 7 workers), 1 M words of shared memory
// per cluster, and costs in the ratio typical of early-1980s
// microprocessor arrays (messages two orders of magnitude more expensive
// than local memory touches).
func DefaultConfig() Config {
	return Config{
		Clusters:           4,
		PEsPerCluster:      8,
		SharedMemoryWords:  1 << 20,
		NetLatency:         200,
		NetCyclesPerWord:   4,
		MemCyclesPerWord:   1,
		KernelDecodeCycles: 50,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("arch: config needs at least 1 cluster, got %d", c.Clusters)
	case c.PEsPerCluster < 2:
		return fmt.Errorf("arch: config needs at least 2 PEs per cluster (kernel + worker), got %d", c.PEsPerCluster)
	case c.SharedMemoryWords < 1:
		return fmt.Errorf("arch: config needs positive shared memory, got %d", c.SharedMemoryWords)
	case c.NetLatency < 0 || c.NetCyclesPerWord < 0 || c.MemCyclesPerWord < 0 || c.KernelDecodeCycles < 0:
		return errors.New("arch: config costs must be non-negative")
	}
	return nil
}

// TotalPEs returns the machine's PE count.
func (c Config) TotalPEs() int { return c.Clusters * c.PEsPerCluster }

// Workers returns the machine's worker (non-kernel) PE count.
func (c Config) Workers() int { return c.Clusters * (c.PEsPerCluster - 1) }
