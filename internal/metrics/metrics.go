// Package metrics provides the processing / storage / communication
// counters that the FEM-2 design method uses to evaluate each virtual
// machine level.
//
// The paper's evaluation plan is built around "simulations to measure the
// storage, processing, and communication patterns in typical FEM-2
// applications".  Every layer of the reproduction (ARCH, SPVM, NAVM, AUVM)
// threads a *Collector through its operations, so an experiment can ask,
// after a run, how many floating point operations were executed, how many
// words were allocated, and how many messages and words crossed cluster
// boundaries — broken down by virtual machine level.
package metrics

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ctxKey keys a context-carried Collector override.
type ctxKey struct{}

// NewContext returns ctx carrying c.  Code that charges a session- or
// system-wide collector consults FromContext first, so a scheduler can
// attribute one job's operations to a per-job Tee collector without
// touching the shared wiring.
func NewContext(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the collector carried by ctx, if any.
func FromContext(ctx context.Context) (*Collector, bool) {
	c, ok := ctx.Value(ctxKey{}).(*Collector)
	return c, ok
}

// Level identifies one of the four FEM-2 virtual machine layers.
type Level int

// The four layers of virtual machine described in the paper, top to bottom.
const (
	// LevelAUVM is the application user's virtual machine (interactive
	// command language, model database, workspaces).
	LevelAUVM Level = iota
	// LevelNAVM is the numerical analyst's virtual machine (tasks,
	// windows, forall/pardo, broadcast, linear algebra operations).
	LevelNAVM
	// LevelSPVM is the system programmer's virtual machine (messages,
	// activation records, ready queues, heap storage).
	LevelSPVM
	// LevelARCH is the hardware layer (clusters of PEs, shared memory,
	// communication network).
	LevelARCH
	numLevels
)

// String returns the conventional short name of the level.
func (l Level) String() string {
	switch l {
	case LevelAUVM:
		return "AUVM"
	case LevelNAVM:
		return "NAVM"
	case LevelSPVM:
		return "SPVM"
	case LevelARCH:
		return "ARCH"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels returns all levels in top-down order.
func Levels() []Level {
	return []Level{LevelAUVM, LevelNAVM, LevelSPVM, LevelARCH}
}

// Counter names used throughout the system.  A counter is identified by a
// (Level, name) pair; names are free-form but these are the ones the
// experiment harness reports on.
const (
	// CtrFlops counts floating point operations (processing requirement).
	CtrFlops = "flops"
	// CtrOps counts abstract VM operations (command executions, task
	// control operations, message decodes ...).
	CtrOps = "ops"
	// CtrWordsAlloc counts words of storage allocated (storage
	// requirement).
	CtrWordsAlloc = "words_alloc"
	// CtrWordsFreed counts words of storage returned.
	CtrWordsFreed = "words_freed"
	// CtrMsgs counts messages sent (communication requirement).
	CtrMsgs = "msgs"
	// CtrMsgWords counts words of message payload moved.
	CtrMsgWords = "msg_words"
	// CtrRemoteAccesses counts accesses to non-local data through
	// windows.
	CtrRemoteAccesses = "remote_accesses"
	// CtrLocalAccesses counts accesses satisfied from task-local data.
	CtrLocalAccesses = "local_accesses"
	// CtrTasksInitiated counts dynamic task initiations.
	CtrTasksInitiated = "tasks_initiated"
	// CtrCycles counts simulated hardware cycles.
	CtrCycles = "cycles"
)

// Collector accumulates named counters per virtual machine level.  It is
// safe for concurrent use; tasks running on many goroutines record into a
// shared Collector.
type Collector struct {
	mu     sync.Mutex
	levels [numLevels]map[string]int64
	// parent, when non-nil, receives a forwarded copy of every Add (see
	// Tee).
	parent *Collector
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	c := &Collector{}
	for i := range c.levels {
		c.levels[i] = make(map[string]int64)
	}
	return c
}

// Tee returns a collector that records locally and forwards every Add
// to parent, so a scope — one job, one request — gets its own counters
// while system-wide accounting is unchanged.  A nil parent is valid (the
// forward is a no-op), matching Add's nil-receiver contract.
func Tee(parent *Collector) *Collector {
	c := NewCollector()
	c.parent = parent
	return c
}

// Add adds delta to the named counter at the given level.  A nil Collector
// is a valid no-op sink, so deeply nested code never needs to check.
func (c *Collector) Add(l Level, name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.levels[l][name] += delta
	c.mu.Unlock()
	c.parent.Add(l, name, delta)
}

// AddFlops is shorthand for Add(l, CtrFlops, n).
func (c *Collector) AddFlops(l Level, n int64) { c.Add(l, CtrFlops, n) }

// Get returns the current value of the named counter at the given level.
func (c *Collector) Get(l Level, name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.levels[l][name]
}

// Total returns the sum of the named counter across all levels.
func (c *Collector) Total(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for i := range c.levels {
		t += c.levels[i][name]
	}
	return t
}

// Reset zeroes every counter.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.levels {
		c.levels[i] = make(map[string]int64)
	}
}

// Snapshot returns a copy of all counters, keyed by level then name.
func (c *Collector) Snapshot() map[Level]map[string]int64 {
	out := make(map[Level]map[string]int64, numLevels)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.levels {
		m := make(map[string]int64, len(c.levels[i]))
		for k, v := range c.levels[i] {
			m[k] = v
		}
		out[Level(i)] = m
	}
	return out
}

// Diff returns a new snapshot holding the per-counter difference between
// the collector's current state and the earlier snapshot prev.
func (c *Collector) Diff(prev map[Level]map[string]int64) map[Level]map[string]int64 {
	cur := c.Snapshot()
	for l, m := range cur {
		for k := range m {
			m[k] -= prev[l][k]
		}
	}
	return cur
}

// Report renders a fixed-width table of all non-zero counters, levels as
// rows in top-down order, counter names as columns in sorted order.  This
// is the per-level requirements table the FEM-2 simulations were meant to
// produce.
func (c *Collector) Report() string {
	snap := c.Snapshot()
	names := map[string]bool{}
	for _, m := range snap {
		for k, v := range m {
			if v != 0 {
				names[k] = true
			}
		}
	}
	cols := make([]string, 0, len(names))
	for k := range names {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "level")
	for _, k := range cols {
		fmt.Fprintf(&b, " %14s", k)
	}
	b.WriteByte('\n')
	for _, l := range Levels() {
		fmt.Fprintf(&b, "%-6s", l)
		for _, k := range cols {
			fmt.Fprintf(&b, " %14d", snap[l][k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
