package metrics

import (
	"context"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelAUVM:  "AUVM",
		LevelNAVM:  "NAVM",
		LevelSPVM:  "SPVM",
		LevelARCH:  "ARCH",
		Level(9):   "Level(9)",
		Level(-1):  "Level(-1)",
		Level(100): "Level(100)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestLevelsOrder(t *testing.T) {
	ls := Levels()
	if len(ls) != 4 {
		t.Fatalf("Levels() returned %d levels, want 4", len(ls))
	}
	want := []Level{LevelAUVM, LevelNAVM, LevelSPVM, LevelARCH}
	for i := range want {
		if ls[i] != want[i] {
			t.Errorf("Levels()[%d] = %v, want %v", i, ls[i], want[i])
		}
	}
}

func TestAddGet(t *testing.T) {
	c := NewCollector()
	c.Add(LevelNAVM, CtrFlops, 10)
	c.Add(LevelNAVM, CtrFlops, 5)
	c.Add(LevelARCH, CtrFlops, 3)
	if got := c.Get(LevelNAVM, CtrFlops); got != 15 {
		t.Errorf("Get(NAVM, flops) = %d, want 15", got)
	}
	if got := c.Get(LevelARCH, CtrFlops); got != 3 {
		t.Errorf("Get(ARCH, flops) = %d, want 3", got)
	}
	if got := c.Get(LevelAUVM, CtrFlops); got != 0 {
		t.Errorf("Get(AUVM, flops) = %d, want 0", got)
	}
	if got := c.Total(CtrFlops); got != 18 {
		t.Errorf("Total(flops) = %d, want 18", got)
	}
}

func TestAddFlops(t *testing.T) {
	c := NewCollector()
	c.AddFlops(LevelNAVM, 7)
	if got := c.Get(LevelNAVM, CtrFlops); got != 7 {
		t.Errorf("AddFlops: got %d, want 7", got)
	}
}

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	c.Add(LevelNAVM, CtrFlops, 10) // must not panic
	c.AddFlops(LevelARCH, 1)
	c.Reset()
	if got := c.Get(LevelNAVM, CtrFlops); got != 0 {
		t.Errorf("nil Get = %d, want 0", got)
	}
	if got := c.Total(CtrFlops); got != 0 {
		t.Errorf("nil Total = %d, want 0", got)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Errorf("nil Snapshot has %d levels, want 0", len(snap))
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.Add(LevelSPVM, CtrMsgs, 4)
	c.Reset()
	if got := c.Get(LevelSPVM, CtrMsgs); got != 0 {
		t.Errorf("after Reset, Get = %d, want 0", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := NewCollector()
	c.Add(LevelAUVM, CtrOps, 2)
	snap := c.Snapshot()
	snap[LevelAUVM][CtrOps] = 999
	if got := c.Get(LevelAUVM, CtrOps); got != 2 {
		t.Errorf("mutating snapshot changed collector: got %d, want 2", got)
	}
}

func TestDiff(t *testing.T) {
	c := NewCollector()
	c.Add(LevelNAVM, CtrMsgs, 10)
	prev := c.Snapshot()
	c.Add(LevelNAVM, CtrMsgs, 7)
	c.Add(LevelARCH, CtrCycles, 3)
	d := c.Diff(prev)
	if d[LevelNAVM][CtrMsgs] != 7 {
		t.Errorf("Diff NAVM msgs = %d, want 7", d[LevelNAVM][CtrMsgs])
	}
	if d[LevelARCH][CtrCycles] != 3 {
		t.Errorf("Diff ARCH cycles = %d, want 3", d[LevelARCH][CtrCycles])
	}
}

func TestConcurrentAdd(t *testing.T) {
	c := NewCollector()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(LevelSPVM, CtrMsgs, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(LevelSPVM, CtrMsgs); got != goroutines*perG {
		t.Errorf("concurrent Add lost updates: got %d, want %d", got, goroutines*perG)
	}
}

func TestReportContainsLevelsAndCounters(t *testing.T) {
	c := NewCollector()
	c.Add(LevelNAVM, CtrFlops, 42)
	c.Add(LevelARCH, CtrCycles, 7)
	r := c.Report()
	for _, want := range []string{"AUVM", "NAVM", "SPVM", "ARCH", CtrFlops, CtrCycles, "42", "7"} {
		if !strings.Contains(r, want) {
			t.Errorf("Report missing %q:\n%s", want, r)
		}
	}
}

func TestReportOmitsZeroColumns(t *testing.T) {
	c := NewCollector()
	c.Add(LevelNAVM, CtrFlops, 1)
	c.Add(LevelNAVM, "never", 0)
	r := c.Report()
	if strings.Contains(r, "never") {
		t.Errorf("Report included all-zero column:\n%s", r)
	}
}

// Property: the sum of per-level values always equals Total, for any
// sequence of adds.
func TestQuickTotalIsSumOfLevels(t *testing.T) {
	f := func(deltas []int16, levels []uint8) bool {
		c := NewCollector()
		var want int64
		n := len(deltas)
		if len(levels) < n {
			n = len(levels)
		}
		for i := 0; i < n; i++ {
			l := Level(int(levels[i]) % 4)
			c.Add(l, CtrWordsAlloc, int64(deltas[i]))
			want += int64(deltas[i])
		}
		return c.Total(CtrWordsAlloc) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff(prev) after extra adds reports exactly the extra adds.
func TestQuickDiffReportsDelta(t *testing.T) {
	f := func(first, second []int8) bool {
		c := NewCollector()
		for _, d := range first {
			c.Add(LevelSPVM, CtrMsgWords, int64(d))
		}
		prev := c.Snapshot()
		var want int64
		for _, d := range second {
			c.Add(LevelSPVM, CtrMsgWords, int64(d))
			want += int64(d)
		}
		d := c.Diff(prev)
		return d[LevelSPVM][CtrMsgWords] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTeeForwardsToParent: a Tee collector records locally and the
// parent sees the same adds — per-scope attribution without losing
// system-wide accounting.
func TestTeeForwardsToParent(t *testing.T) {
	parent := NewCollector()
	parent.Add(LevelAUVM, CtrOps, 5)
	child := Tee(parent)
	child.Add(LevelAUVM, CtrOps, 2)
	child.AddFlops(LevelNAVM, 100)
	if got := child.Get(LevelAUVM, CtrOps); got != 2 {
		t.Errorf("child ops = %d, want 2 (local only)", got)
	}
	if got := parent.Get(LevelAUVM, CtrOps); got != 7 {
		t.Errorf("parent ops = %d, want 7", got)
	}
	if got := parent.Get(LevelNAVM, CtrFlops); got != 100 {
		t.Errorf("parent flops = %d, want 100", got)
	}
	// A nil parent is a valid sink.
	orphan := Tee(nil)
	orphan.Add(LevelAUVM, CtrOps, 1)
	if got := orphan.Get(LevelAUVM, CtrOps); got != 1 {
		t.Errorf("orphan ops = %d", got)
	}
}

// TestCollectorContext: the context override round-trips, and its
// absence is reported.
func TestCollectorContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := FromContext(ctx); ok {
		t.Error("empty context carried a collector")
	}
	c := NewCollector()
	if got, ok := FromContext(NewContext(ctx, c)); !ok || got != c {
		t.Errorf("FromContext = %v, %v", got, ok)
	}
}
