// Acceptance tests for the asynchronous job service: the facade-level
// guarantees ISSUE 4 asks of the concurrent multi-tenant front end.
package fem2_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	fem2 "repro"
)

// buildPlate builds one model + tip load set in a session, via the
// synchronous cheap verbs.
func buildPlate(t testing.TB, s *fem2.Session, model string, nx, ny int) {
	t.Helper()
	ctx := context.Background()
	cmds := []fem2.Command{
		fem2.GenerateGrid{Name: model, NX: nx, NY: ny, W: float64(nx), H: float64(ny), ClampLeft: true},
		fem2.EndLoad{Model: model, Set: "tip", FY: -100},
	}
	for _, c := range cmds {
		if _, err := s.Do(ctx, c); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
}

// TestConcurrentSessionsThroughScheduler is the acceptance criterion:
// at least 16 concurrent sessions submitting solves on shared and
// distinct models through the scheduler, every result identical to the
// synchronous path.  go test -race runs this under the race detector.
func TestConcurrentSessionsThroughScheduler(t *testing.T) {
	const sessions = 20 // half on one shared model name, half distinct
	sys, err := fem2.New(fem2.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	// Reference results from the synchronous path on an isolated system
	// — one reference session suffices since models are deterministic
	// functions of their generate parameters.
	refSys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	defer refSys.Close()
	ref := refSys.Session("ref")
	want := make([]string, sessions)
	models := make([]string, sessions)
	for i := range models {
		if i%2 == 0 {
			models[i] = "shared" // same model name in every even session
		} else {
			models[i] = fmt.Sprintf("plate-%d", i)
		}
	}
	seen := map[string]bool{}
	for i, m := range models {
		if !seen[m] {
			buildPlate(t, ref, m, 6, 4)
			seen[m] = true
		}
		res, err := ref.Do(ctx, fem2.SolveCommand{Model: m, Set: "tip"})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.String()
	}

	// The concurrent run: one goroutine per session, each building its
	// own workspace copy of its model and submitting the solve through
	// the shared scheduler.  Solves on "shared" serialize on the model
	// lock; distinct plates run in parallel across the pool.
	got := make([]string, sessions)
	errc := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sys.Session(fmt.Sprintf("user-%d", i))
			buildPlate(t, s, models[i], 6, 4)
			id, err := s.SubmitAsync(ctx, fem2.SolveCommand{Model: models[i], Set: "tip"})
			if err != nil {
				errc <- fmt.Errorf("user-%d submit: %w", i, err)
				return
			}
			res, err := sys.Jobs.Wait(ctx, id)
			if err != nil {
				errc <- fmt.Errorf("user-%d wait: %w", i, err)
				return
			}
			got[i] = res.String()
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("session %d (%s): async %q != sync %q", i, models[i], got[i], want[i])
		}
	}

	// The scheduler saw every job and all of them finished.
	done := sys.Jobs.List(fem2.JobFilter{States: []fem2.JobState{fem2.JobDone}})
	if len(done) != sessions {
		t.Errorf("done jobs = %d, want %d", len(done), sessions)
	}
	if n := len(sys.Users()); n != sessions {
		t.Errorf("Users = %d, want %d", n, sessions)
	}
}

// TestCancelMidSolveThroughFacade: a job cancelled mid-solve surfaces
// ErrCancelled through the facade and the shared database is untouched.
func TestCancelMidSolveThroughFacade(t *testing.T) {
	sys, err := fem2.New(fem2.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	s := sys.Session("eng")
	buildPlate(t, s, "big", 40, 40)
	if _, err := s.Do(ctx, fem2.StoreCommand{Model: "big"}); err != nil {
		t.Fatal(err)
	}
	namesBefore := fmt.Sprint(sys.Database.Names())

	id, err := s.SubmitAsync(ctx, fem2.SolveCommand{Model: "big", Set: "tip", Method: fem2.SolveJacobi})
	if err != nil {
		t.Fatal(err)
	}
	// Let it leave the queue, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := sys.Jobs.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != fem2.JobQueued || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sys.Jobs.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Jobs.Wait(ctx, id); !errors.Is(err, fem2.ErrCancelled) {
		t.Fatalf("cancelled job error = %v, want ErrCancelled", err)
	}
	snap, err := sys.Jobs.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != fem2.JobCancelled {
		t.Errorf("state = %v, want cancelled", snap.State)
	}
	if got := fmt.Sprint(sys.Database.Names()); got != namesBefore {
		t.Errorf("database changed across cancel: %s -> %s", namesBefore, got)
	}
	if s.WS.Solution("big") != nil {
		t.Error("cancelled solve left a workspace solution")
	}
}

// TestJobSurfaceThroughREPL drives the whole job API through the
// command language alone, the way a workstation user would.
func TestJobSurfaceThroughREPL(t *testing.T) {
	sys, err := fem2.New(fem2.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session("eng")
	for _, line := range []string{
		"generate grid wing 8 4 8 4 clamp-left",
		"load wing cruise endload 0 -500",
	} {
		if _, err := s.Execute(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	syncOut, err := s.Execute("solve wing cruise")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Execute("submit solve wing cruise")
	if err != nil {
		t.Fatal(err)
	}
	if want := "submitted job-1 (queued): solve wing cruise"; out != want {
		t.Errorf("submit = %q, want %q", out, want)
	}
	waitOut, err := s.Execute("wait job-1")
	if err != nil {
		t.Fatal(err)
	}
	if waitOut != syncOut {
		t.Errorf("wait %q != sync solve %q", waitOut, syncOut)
	}
	statusOut, err := s.Execute("status job-1")
	if err != nil {
		t.Fatal(err)
	}
	if want := `job-1 done (owner "eng"): solve wing cruise`; len(statusOut) < len(want) || statusOut[:len(want)] != want {
		t.Errorf("status = %q", statusOut)
	}
	// The typed state-name constants drive the jobs filter.
	res, err := s.Do(context.Background(), fem2.JobsCommand{State: fem2.JobDoneName})
	if err != nil {
		t.Fatal(err)
	}
	if jr := res.(*fem2.JobsResult); len(jr.Rows) != 1 || jr.Rows[0].State != fem2.JobDoneName {
		t.Errorf("typed jobs filter = %+v", res)
	}
	// An unknown job is a NotFound, not a crash.
	if _, err := s.Execute("status job-99"); !errors.Is(err, fem2.ErrNotFound) {
		t.Errorf("status of unknown job: %v", err)
	}
}

// TestConcurrentJobsShareFactorization is the factor-once guarantee of
// ISSUE 5: N jobs submitted concurrently against one model serialize on
// the per-model lock and share the scheduler's per-model factor cache,
// so exactly one of them factors and the rest ride the warm factor with
// identical displays.  go test -race runs this under the race detector.
func TestConcurrentJobsShareFactorization(t *testing.T) {
	const jobs = 8
	sys, err := fem2.New(fem2.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session("eng")
	buildPlate(t, s, "wing", 8, 6)
	ctx := context.Background()

	ids := make([]fem2.JobID, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = s.SubmitAsync(ctx, fem2.SolveCommand{
				Model: "wing", Set: "tip", Method: fem2.SolveCholeskyRCM,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	refactored := 0
	var display string
	for i, id := range ids {
		res, err := sys.Jobs.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %v: %v", id, err)
		}
		sr, ok := res.(*fem2.SolveResult)
		if !ok {
			t.Fatalf("job %v result %T", id, res)
		}
		if sr.Refactored {
			refactored++
		}
		if i == 0 {
			display = sr.String()
		} else if got := sr.String(); got != display {
			t.Errorf("job %v display %q differs from %q", id, got, display)
		}
	}
	if refactored != 1 {
		t.Errorf("%d of %d jobs refactored, want exactly 1", refactored, jobs)
	}
	if g := sys.Jobs.FactorCache("wing").Generation(); g != 1 {
		t.Errorf("scheduler cache generation = %d, want 1", g)
	}

	// The synchronous solve verb shares the same per-model-name cache:
	// it rides the factor the jobs computed.
	res, err := s.Do(ctx, fem2.SolveCommand{Model: "wing", Set: "tip", Method: fem2.SolveCholeskyRCM})
	if err != nil {
		t.Fatal(err)
	}
	if sr := res.(*fem2.SolveResult); sr.Refactored {
		t.Error("synchronous solve after warm jobs refactored")
	}
	if got := res.String(); got != display {
		t.Errorf("synchronous display %q differs from job display %q", got, display)
	}
}
