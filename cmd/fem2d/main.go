// Command fem2d is the FEM-2 daemon: it serves one simulated FEM-2
// system over TCP to any number of concurrent network clients, each
// getting a private session over the shared database, scheduler, and
// simulated machine.  The protocol is length-prefixed JSON carrying the
// typed command language — see docs/protocol.md; `fem2 -connect
// host:port` is the matching interactive client.
//
// Usage:
//
//	fem2d [-addr :7432] [-clusters N] [-pes N] [-workers N]
//	      [-store mem|file] [-store-path fem2.db] [-store-sync]
//	      [-advertise host:port] [-lease-ttl 2s]
//	      [-max-jobs N] [-quota-policy reject|queue]
//	      [-request-timeout 0] [-resubmit-lost N] [-resubmit-backoff 1s]
//	      [-drain-timeout 30s] [-metrics 0] [-metrics-out file]
//
// With -store file -store-path fem2.db the daemon is durable: stored
// models, solution history, and the job journal live in the store
// file, so a restarted daemon serves everything its predecessor did —
// jobs in flight at a crash come back deterministically failed with a
// "lost to restart" cause.  -store-sync additionally fsyncs every
// batch (durable through power loss, not just process death) at a
// throughput cost; -resubmit-lost N opts lost jobs into automatic
// resubmission, up to N attempts each with exponential backoff.
//
// The daemon degrades instead of dying when its store does: after
// persistent write failures it flips to read-only (mutating verbs
// refuse with the degraded code, reads and job control keep serving)
// and a background probe re-arms writes when the backend recovers —
// see docs/robustness.md.  -request-timeout, when set, bounds each
// command's execution server-side (wait and submit are exempt).
//
// With -advertise the daemon joins (or founds) a cluster: any number
// of fem2d processes sharing one -store file coordinate through a
// lease in the store itself; the leaseholder serves writes, the rest
// serve reads and redirect mutating commands to the leader's
// advertised address, and a dead leader is replaced within about one
// -lease-ttl.  Point `fem2 -connect a:port,b:port` at several of them
// and the client follows redirects and fails over by itself.  See
// docs/cluster.md.
//
// Each connection is one tenant: -max-jobs bounds its in-flight jobs,
// with -quota-policy choosing whether a saturated connection's submits
// fail fast or block for a slot.  On SIGINT/SIGTERM the daemon drains
// gracefully: it stops accepting, refuses new mutating commands while
// job control still answers, waits up to -drain-timeout for running
// jobs (then cancels the rest), flushes pending notifications, and
// exits.
//
// With -metrics <interval> the daemon streams one JSON line of live
// metrics per interval — jobs/s, queue depth, cache hit rates,
// per-verb latency histograms — to stderr, or appended to the
// -metrics-out file.  See docs/observability.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	fem2 "repro"
	"repro/internal/job"
	"repro/internal/server"
)

// startMetrics starts the -metrics emitter over reg, writing to path
// (created if needed, appended to) or stderr.  The returned stop
// flushes the emitter out.
func startMetrics(reg *fem2.ObsRegistry, interval time.Duration, path string) (stop func(), err error) {
	w := io.Writer(os.Stderr)
	var f *os.File
	if path != "" {
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w = f
	}
	em := fem2.NewMetricsEmitter(reg, fem2.MetricsEmitterOpts{Interval: interval, W: w})
	em.Start()
	return func() {
		em.Stop()
		if f != nil {
			f.Close()
		}
	}, nil
}

func main() {
	addr := flag.String("addr", ":7432", "TCP address to listen on")
	clusters := flag.Int("clusters", 4, "number of PE clusters")
	pes := flag.Int("pes", 8, "PEs per cluster (including the kernel PE)")
	workers := flag.Int("workers", 0, "job scheduler worker pool bound (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 16, "max in-flight jobs per connection (0 = unlimited)")
	policy := flag.String("quota-policy", "reject", "at the per-connection job bound: reject | queue")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for running jobs before cancelling them")
	quiet := flag.Bool("quiet", false, "suppress per-connection log lines")
	storeBackend := flag.String("store", "mem", "storage backend: mem | file")
	storePath := flag.String("store-path", "", "with -store file: the store's file path")
	storeSync := flag.Bool("store-sync", false, "with -store file: fsync every batch (durable through power loss, slower)")
	advertise := flag.String("advertise", "", "join a cluster over the shared -store file, advertising this address to redirected clients")
	leaseTTL := flag.Duration("lease-ttl", 0, "with -advertise: cluster lease lifetime (0 = default)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-command server-side execution bound (0 = none; wait and submit are exempt)")
	resubmitLost := flag.Int("resubmit-lost", 0, "auto-resubmit jobs lost to a crash, up to N attempts each (0 = off)")
	resubmitBackoff := flag.Duration("resubmit-backoff", time.Second, "base backoff between lost-job resubmissions")
	metricsInterval := flag.Duration("metrics", 0, "emit one JSON metrics line per interval (0 = off)")
	metricsOut := flag.String("metrics-out", "", "with -metrics: append metric lines to this file instead of stderr")
	flag.Parse()

	qp, err := job.ParseQuotaPolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2d:", err)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "fem2d: ", log.LstdFlags)
	opts := []fem2.Option{fem2.WithClusters(*clusters), fem2.WithPEsPerCluster(*pes),
		fem2.WithWorkers(*workers),
		fem2.WithStore(fem2.StoreConfig{Backend: *storeBackend, Path: *storePath, Sync: *storeSync}),
		fem2.WithStoreGuard(fem2.GuardOpts{OnChange: func(degraded bool) {
			if degraded {
				logger.Printf("store degraded: persistent write failures; serving read-only until the backend recovers")
			} else {
				logger.Printf("store recovered: writes re-armed")
			}
		}})}
	if *advertise != "" {
		if *storeBackend != "file" {
			fmt.Fprintln(os.Stderr, "fem2d: -advertise requires -store file (the store file is the coordination medium)")
			os.Exit(2)
		}
		host, _ := os.Hostname()
		opts = append(opts, fem2.WithCluster(fem2.ClusterOpts{
			Owner:     fmt.Sprintf("%s/%d", host, os.Getpid()),
			Advertise: *advertise,
			TTL:       *leaseTTL,
			OnPromote: func(epoch int64) {
				logger.Printf("cluster: serving as leader (epoch %d)", epoch)
			},
			OnDemote: func(reason string) {
				logger.Printf("cluster: serving as follower (%s)", reason)
			},
			Logf: logger.Printf,
		}))
	}
	sys, err := fem2.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2d:", err)
		os.Exit(1)
	}
	sys.Jobs.SetLogf(logger.Printf)

	if *metricsInterval > 0 {
		stopMetrics, err := startMetrics(sys.Obs, *metricsInterval, *metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fem2d:", err)
			os.Exit(1)
		}
		defer stopMetrics()
	}

	cfg := server.Config{MaxJobsPerSession: *maxJobs, QuotaPolicy: qp,
		RequestTimeout: *requestTimeout}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := server.New(sys, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2d:", err)
		os.Exit(1)
	}
	logger.Printf("serving FEM-2 (%d clusters × %d PEs, storage %s) on %s",
		*clusters, *pes, sys.StorageBackend(), ln.Addr())
	if *advertise != "" {
		logger.Printf("cluster: %s (advertising %s)", sys.ClusterRole(), *advertise)
	}

	// Serve until a signal arrives, then drain gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if *resubmitLost > 0 {
		go func() {
			ids, err := sys.ResubmitLost(ctx, fem2.ResubmitPolicy{
				MaxAttempts: *resubmitLost, Backoff: *resubmitBackoff})
			if err != nil {
				logger.Printf("lost-job resubmission stopped: %v", err)
			}
			if len(ids) > 0 {
				logger.Printf("resubmitted %d job(s) lost to restart", len(ids))
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fem2d:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining (timeout %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete, remaining jobs cancelled: %v", err)
	}
	logger.Printf("bye")
}
