// Command fem2 is the FEM-2 interactive workstation: the application
// user's virtual machine as a REPL.  A structural engineer defines
// models, generates grids, applies loads, solves (sequentially, in
// parallel on the simulated machine, or by substructuring), recovers
// stresses, and stores models in the shared database.
//
// Usage:
//
//	fem2 [-clusters N] [-pes N] [-workers N] [-script file]
//
// Without -script it reads commands from stdin; type `help` for the
// command language.  Long-running solves can run asynchronously on the
// system's job scheduler: `submit solve ...` returns a job id at once,
// and `status`, `wait`, `cancel`, and `jobs` monitor and control it.
package main

import (
	"flag"
	"fmt"
	"os"

	fem2 "repro"
)

func main() {
	clusters := flag.Int("clusters", 4, "number of PE clusters")
	pes := flag.Int("pes", 8, "PEs per cluster (including the kernel PE)")
	workers := flag.Int("workers", 0, "job scheduler worker pool bound (0 = GOMAXPROCS)")
	script := flag.String("script", "", "command script to run instead of stdin")
	user := flag.String("user", "engineer", "user name for the session")
	report := flag.Bool("report", false, "print the machine report on exit")
	flag.Parse()

	sys, err := fem2.New(fem2.WithClusters(*clusters), fem2.WithPEsPerCluster(*pes),
		fem2.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2:", err)
		os.Exit(1)
	}
	defer sys.Close()
	sess := sys.Session(*user)

	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fem2:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else {
		fmt.Printf("FEM-2 workstation (%d clusters × %d PEs). Type help for commands.\n",
			*clusters, *pes)
	}
	if err := sess.Run(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fem2:", err)
		os.Exit(1)
	}
	if *report {
		fmt.Print(sys.Machine.Report())
		fmt.Print(sys.Metrics.Report())
	}
}
