// Command fem2 is the FEM-2 interactive workstation: the application
// user's virtual machine as a REPL.  A structural engineer defines
// models, generates grids, applies loads, solves (sequentially, in
// parallel on the simulated machine, or by substructuring), recovers
// stresses, and stores models in the shared database.
//
// Usage:
//
//	fem2 [-clusters N] [-pes N] [-workers N] [-store mem|file]
//	     [-store-path fem2.db] [-store-sync] [-script file]
//	     [-metrics 0] [-metrics-out file]
//	fem2 -connect host:port[,host:port...] [-notify] [-retries N]
//	     [-retry-backoff 50ms] [-request-timeout 0] [-script file]
//	     [-metrics 0] [-metrics-out file]
//
// Without -script it reads commands from stdin; type `help` for the
// command language.  Long-running solves can run asynchronously on the
// system's job scheduler: `submit solve ...` returns a job id at once,
// and `status`, `wait`, `cancel`, and `jobs` monitor and control it.
//
// With -store file -store-path fem2.db the local system's database and
// job history persist across runs; `snapshot <file>` / `restore <file>`
// save and load a whole workspace either way.
//
// With -connect the REPL runs against a fem2d daemon instead of an
// in-process system: the same command language, the same output lines,
// with jobs running server-side.  -notify additionally prints the
// server's job-state notifications as they arrive.  A dropped
// connection is redialed transparently up to -retries times per
// request (0 disables reconnection), replaying only the idempotent
// global verbs; -request-timeout bounds each request client-side
// (wait is exempt).  -connect may list several endpoints of one
// cluster, comma-separated: the client dials the first that answers,
// follows not-leader redirects to the leaseholder, and fails over to
// a surviving peer when a daemon dies (see docs/cluster.md).  In both
// modes SIGINT/SIGTERM cancels the in-flight command (and, connected,
// the session's server-side jobs) cleanly.
//
// With -metrics <interval> the workstation streams one JSON line of
// live metrics per interval to stderr (or appended to -metrics-out):
// locally the whole system's registry, connected the client's own
// reconnect/retry counters.  The `stats` verb prints the serving
// system's snapshot either way.  See docs/observability.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	fem2 "repro"
	"repro/internal/client"
)

// startMetrics starts the -metrics emitter over reg, writing to path
// (created if needed, appended to) or stderr.  The returned stop
// flushes the emitter out.
func startMetrics(reg *fem2.ObsRegistry, interval time.Duration, path string) (stop func(), err error) {
	w := io.Writer(os.Stderr)
	var f *os.File
	if path != "" {
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w = f
	}
	em := fem2.NewMetricsEmitter(reg, fem2.MetricsEmitterOpts{Interval: interval, W: w})
	em.Start()
	return func() {
		em.Stop()
		if f != nil {
			f.Close()
		}
	}, nil
}

func main() {
	clusters := flag.Int("clusters", 4, "number of PE clusters")
	pes := flag.Int("pes", 8, "PEs per cluster (including the kernel PE)")
	workers := flag.Int("workers", 0, "job scheduler worker pool bound (0 = GOMAXPROCS)")
	script := flag.String("script", "", "command script to run instead of stdin")
	user := flag.String("user", "engineer", "user name for the session")
	report := flag.Bool("report", false, "print the machine report on exit")
	connect := flag.String("connect", "", "serve the REPL from a fem2d daemon at host:port (comma-separate cluster endpoints)")
	notify := flag.Bool("notify", false, "with -connect: print job-state notifications")
	storeBackend := flag.String("store", "mem", "storage backend: mem | file")
	storePath := flag.String("store-path", "", "with -store file: the store's file path")
	storeSync := flag.Bool("store-sync", false, "with -store file: fsync every batch (durable through power loss, slower)")
	retries := flag.Int("retries", 5, "with -connect: reconnect budget per request (0 = fail on first drop)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "with -connect: base backoff between reconnect attempts")
	requestTimeout := flag.Duration("request-timeout", 0, "with -connect: per-request client-side deadline (0 = none; wait is exempt)")
	metricsInterval := flag.Duration("metrics", 0, "emit one JSON metrics line per interval (0 = off)")
	metricsOut := flag.String("metrics-out", "", "with -metrics: append metric lines to this file instead of stderr")
	flag.Parse()

	// SIGINT/SIGTERM cancel the root context: the in-flight solve (local
	// or remote) stops through the ordinary context plumbing instead of
	// the process dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	in := io.Reader(os.Stdin)
	banner := *script == ""
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fem2:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	if *connect != "" {
		// Connected, the local registry sees only the client's own
		// metrics (reconnects, retries); the server's live through the
		// stats verb.
		reg := fem2.NewObsRegistry()
		if *metricsInterval > 0 {
			stop, err := startMetrics(reg, *metricsInterval, *metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fem2:", err)
				os.Exit(1)
			}
			defer stop()
		}
		cl, err := client.DialWithOptions(*connect, *user, client.Options{
			MaxRetries: *retries, BaseBackoff: *retryBackoff,
			RequestTimeout: *requestTimeout, Obs: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fem2:", err)
			os.Exit(1)
		}
		defer cl.Close()
		if banner {
			storage := cl.Storage()
			if storage == "" {
				storage = "unknown"
			}
			fmt.Printf("FEM-2 workstation connected to %s (session %s, storage %s). Type help for commands.\n",
				*connect, cl.Session(), storage)
		}
		if err := cl.Run(ctx, in, os.Stdout, *notify); err != nil {
			fmt.Fprintln(os.Stderr, "fem2:", err)
			os.Exit(1)
		}
		return
	}

	sys, err := fem2.New(fem2.WithClusters(*clusters), fem2.WithPEsPerCluster(*pes),
		fem2.WithWorkers(*workers),
		fem2.WithStore(fem2.StoreConfig{Backend: *storeBackend, Path: *storePath, Sync: *storeSync}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *metricsInterval > 0 {
		stop, err := startMetrics(sys.Obs, *metricsInterval, *metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fem2:", err)
			os.Exit(1)
		}
		defer stop()
	}
	sess := sys.Session(*user)

	if banner {
		fmt.Printf("FEM-2 workstation (%d clusters × %d PEs). Type help for commands.\n",
			*clusters, *pes)
	}
	if err := sess.RunContext(ctx, in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fem2:", err)
		os.Exit(1)
	}
	if *report {
		fmt.Print(sys.Machine.Report())
		fmt.Print(sys.Metrics.Report())
	}
}
