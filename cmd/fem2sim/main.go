// Command fem2sim runs the FEM-2 evaluation: every experiment table from
// DESIGN.md's per-experiment index (E1-E11 plus the design-method
// iteration), regenerated on the simulated machine.
//
// Usage:
//
//	fem2sim            # run everything
//	fem2sim -only E2   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fem2 "repro"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (E1..E11, DM)")
	flag.Parse()

	tables, err := fem2.RunAllExperiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fem2sim:", err)
		if len(tables) == 0 {
			os.Exit(1)
		}
	}
	printed := 0
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		fmt.Println(t)
		printed++
	}
	if *only != "" && printed == 0 {
		fmt.Fprintf(os.Stderr, "fem2sim: no experiment %q\n", *only)
		os.Exit(1)
	}
}
