// Command hgraph prints and checks the formal H-graph semantics
// definitions of the FEM-2 virtual machine levels.
//
// Usage:
//
//	hgraph          # list every level grammar in BNF-like notation
//	hgraph -check   # verify all grammars are well-formed and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/hgraph"
)

func main() {
	check := flag.Bool("check", false, "verify grammars and exit silently on success")
	flag.Parse()

	all := hgraph.AllLevelGrammars()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)

	bad := 0
	for _, n := range names {
		g := all[n]
		if errs := g.WellFormed(); len(errs) > 0 {
			bad++
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "hgraph: %s: %v\n", n, e)
			}
			continue
		}
		if !*check {
			fmt.Println(g)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	if *check {
		fmt.Printf("all %d level grammars well-formed\n", len(names))
	}
}
