// Package fem2 is the public API of the FEM-2 reproduction: a complete
// implementation of the system designed in "The FEM-2 Design Method"
// (Pratt, Adams, Mehrotra, Van Rosendale, Voigt, Patrick; NASA CR-172197
// / ICASE 83-41, 1983).
//
// FEM-2 is a parallel computer for structural analysis by finite element
// methods, designed top-down as four layers of virtual machine, each
// formally specified with H-graph semantics:
//
//	AUVM — the application user's machine (interactive command language,
//	       model database, workspaces),
//	NAVM — the numerical analyst's machine (tasks, windows on arrays,
//	       forall/pardo, broadcast, remote procedure call, parallel
//	       linear algebra),
//	SPVM — the system programmer's machine (the seven task messages,
//	       activation records, ready queues, a variable-size-block heap),
//	ARCH — the hardware (clusters of PEs around shared memories, joined
//	       by a communication network, one kernel PE per cluster).
//
// The hardware was never fabricated; per the paper's own method it is
// evaluated by simulation.  NewSystem builds the whole stack over a
// simulated machine; Session gives an interactive workstation; the
// experiment runners regenerate the paper's evaluation (see DESIGN.md and
// EXPERIMENTS.md).
//
// Quick start, typed API:
//
//	sys, _ := fem2.New(fem2.WithClusters(4), fem2.WithPEsPerCluster(8))
//	s := sys.Session("engineer")
//	ctx := context.Background()
//	s.Do(ctx, fem2.GenerateGrid{Name: "wing", NX: 16, NY: 8, W: 16, H: 8, ClampLeft: true})
//	s.Do(ctx, fem2.EndLoad{Model: "wing", Set: "cruise", FY: -1000})
//	res, _ := s.Do(ctx, fem2.SolveCommand{Model: "wing", Set: "cruise", Parallel: 8})
//	sr := res.(*fem2.SolveResult) // typed fields: Iterations, Makespan, MaxDisp ...
//
// Quick start, command language (the same layer through the Parse
// adapter):
//
//	sys, _ := fem2.NewSystem(fem2.DefaultConfig())
//	s := sys.Session("engineer")
//	s.Execute("generate grid wing 16 8 16 8 clamp-left")
//	s.Execute("load wing cruise endload 0 -1000")
//	out, _ := s.Execute("solve wing cruise parallel 8")
//	fmt.Println(out)
//
// Quick start, asynchronous job service (the concurrent multi-tenant
// front end — many sessions submit, monitor, and cancel long-running
// work on one shared scheduler; solves on different models run in
// parallel, solves on one model serialize):
//
//	sys, _ := fem2.New(fem2.WithWorkers(8))
//	defer sys.Close()
//	s := sys.Session("engineer")
//	s.Do(ctx, fem2.GenerateGrid{Name: "wing", NX: 16, NY: 8, W: 16, H: 8, ClampLeft: true})
//	s.Do(ctx, fem2.EndLoad{Model: "wing", Set: "cruise", FY: -1000})
//	id, _ := s.SubmitAsync(ctx, fem2.SolveCommand{Model: "wing", Set: "cruise"})
//	// ... the solve runs on the worker pool; monitor or cancel it:
//	snap, _ := sys.Jobs.Status(id)   // queued / running / done ...
//	res, err := sys.Jobs.Wait(ctx, id) // the same *SolveResult Do returns
//	_, _, _ = snap, res, err
//
// The command language speaks the same job API — `submit solve wing
// cruise`, `status job-1`, `wait job-1`, `cancel job-1`, `jobs user
// engineer state running` — so a REPL user and an RPC front end share
// one scheduler.
package fem2

import (
	"context"

	"repro/internal/arch"
	"repro/internal/auvm"
	"repro/internal/client"
	"repro/internal/command"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/exp"
	"repro/internal/fem"
	"repro/internal/hgraph"
	"repro/internal/job"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config describes a FEM-2 hardware configuration: cluster count, PEs per
// cluster, shared memory size, and the network/memory/kernel cost model.
type Config = arch.Config

// DefaultConfig returns the baseline 4-cluster × 8-PE machine.
func DefaultConfig() Config { return arch.DefaultConfig() }

// System is a complete FEM-2 instance: simulated hardware, per-cluster
// kernels, the NAVM runtime, the shared model database, user sessions,
// and machine-wide instrumentation.
type System = core.System

// options collects everything New configures: the simulated hardware,
// the front end's job scheduler bound, and the storage backend.
type options struct {
	cfg     Config
	workers int
	store   StoreConfig
	guard   store.GuardOpts
	cluster *ClusterOpts
}

// Option adjusts one dimension of the system New builds.
type Option func(*options)

// WithClusters sets the number of PE clusters.
func WithClusters(n int) Option { return func(o *options) { o.cfg.Clusters = n } }

// WithPEsPerCluster sets the PEs in each cluster (including the kernel
// PE, so each cluster has n-1 workers).
func WithPEsPerCluster(n int) Option { return func(o *options) { o.cfg.PEsPerCluster = n } }

// WithSharedMemoryWords sets each cluster's shared-memory capacity.
func WithSharedMemoryWords(w int64) Option { return func(o *options) { o.cfg.SharedMemoryWords = w } }

// WithCostModel sets the simulator's cost parameters: the fixed network
// message latency, the per-word network transfer cost, the per-word
// shared-memory cost, and the kernel PE's message decode cost.
func WithCostModel(netLatency, netCyclesPerWord, memCyclesPerWord, kernelDecodeCycles int64) Option {
	return func(o *options) {
		o.cfg.NetLatency = netLatency
		o.cfg.NetCyclesPerWord = netCyclesPerWord
		o.cfg.MemCyclesPerWord = memCyclesPerWord
		o.cfg.KernelDecodeCycles = kernelDecodeCycles
	}
}

// WithConfig replaces the whole hardware configuration; later options
// adjust it further.
func WithConfig(cfg Config) Option { return func(o *options) { o.cfg = cfg } }

// WithWorkers bounds the job scheduler's worker pool: at most n
// asynchronous jobs execute at once (0, the default, selects GOMAXPROCS).
// Workers start lazily on the first SubmitAsync / submit.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithStore selects the storage backend the system's model database and
// job journal persist through.  The default is the in-memory backend;
// WithStore(StoreConfig{Backend: StoreFile, Path: "fem2.db"}) makes
// models, solution history, and job records survive a restart — on
// start the store is replayed, the database recovered, and jobs that
// were in flight at a crash deterministically failed.
func WithStore(sc StoreConfig) Option { return func(o *options) { o.store = sc } }

// ClusterOpts configures lease-based multi-daemon failover: N daemons
// over one shared store, one leaseholder serving writes, the rest
// serving reads and redirecting.  See core.ClusterOpts, internal/cluster
// and docs/cluster.md.
type ClusterOpts = core.ClusterOpts

// WithCluster makes New build the system as one member of a
// multi-daemon cluster sharing the configured store.  Requires the
// file store backend (the store file is the coordination medium).
func WithCluster(co ClusterOpts) Option { return func(o *options) { o.cluster = &co } }

// New builds the full four-layer stack over the default configuration
// adjusted by the given options.
func New(opts ...Option) (*System, error) {
	o := options{cfg: DefaultConfig()}
	for _, f := range opts {
		f(&o)
	}
	if o.store.Backend == "" {
		o.store.Backend = StoreMem
	}
	if o.cluster != nil {
		return core.NewSystemClustered(o.cfg, o.workers, o.store, o.guard, *o.cluster)
	}
	return core.NewSystemWithStoreGuard(o.cfg, o.workers, o.store, o.guard)
}

// NewSystem builds the full four-layer stack over an explicit hardware
// configuration.  It is New(WithConfig(cfg)).
func NewSystem(cfg Config) (*System, error) { return New(WithConfig(cfg)) }

// Session is one interactive workstation user: a workspace, the shared
// database, and the command interpreter.
type Session = auvm.Session

// Workspace holds a user's local models, load sets, solutions, and
// stresses.
type Workspace = auvm.Workspace

// Database is the long-term shared model store.
type Database = auvm.Database

// Command is one typed AUVM request; Session.Do interprets it.  Build
// commands as struct literals or Parse them from command lines.
type Command = command.Command

// Result is one typed AUVM reply; its String rendering is the REPL
// display line.
type Result = command.Result

// Parse lexes and parses one command line into its typed Command.  Blank
// lines and # comments parse to (nil, nil); syntax errors wrap ErrUsage.
func Parse(line string) (Command, error) { return command.Parse(line) }

// The command AST, one struct per verb of the workstation language.
type (
	// HelpCommand requests the command-language summary.
	HelpCommand = command.Help
	// PingCommand is the round-trip health check; it answers "pong".
	PingCommand = command.Ping
	// VersionCommand reports the software release and wire protocol
	// revision.
	VersionCommand = command.Version
	// QuitCommand ends a session (Do answers with auvm.ErrQuit).
	QuitCommand = command.Quit
	// Define creates an empty structure model in the workspace.
	Define = command.Define
	// SetMaterial sets the session's current material.
	SetMaterial = command.SetMaterial
	// GenerateGrid generates a rectangular plane-stress grid.
	GenerateGrid = command.GenerateGrid
	// GenerateTruss generates a triangulated cantilever truss.
	GenerateTruss = command.GenerateTruss
	// GenerateBar generates a uniaxial bar chain.
	GenerateBar = command.GenerateBar
	// AddNode appends a node to a model.
	AddNode = command.AddNode
	// AddBar appends a bar element to a model.
	AddBar = command.AddBar
	// AddCST appends a constant-strain triangle to a model.
	AddCST = command.AddCST
	// FixNode fixes both dofs of a node.
	FixNode = command.FixNode
	// FixDOF fixes a single dof.
	FixDOF = command.FixDOF
	// DefineLoadSet creates an empty named load set on a model.
	DefineLoadSet = command.DefineLoadSet
	// AddLoad appends one nodal load to a load set.
	AddLoad = command.AddLoad
	// EndLoad spreads a force over a generated grid's right edge.
	EndLoad = command.EndLoad
	// SolveCommand solves a model/load-set pair for displacements.
	SolveCommand = command.Solve
	// StressesCommand recovers element stresses from the last solution.
	StressesCommand = command.Stresses
	// Display summarises a model, its displacements, or its stresses.
	Display = command.Display
	// StoreCommand files a workspace model in the shared database.
	StoreCommand = command.Store
	// RetrieveCommand copies a database model into the workspace.
	RetrieveCommand = command.Retrieve
	// DeleteCommand removes a model from the shared database.
	DeleteCommand = command.Delete
	// ListCommand enumerates the database or the workspace.
	ListCommand = command.List
	// SnapshotCommand saves the session's whole workspace to a file.
	SnapshotCommand = command.Snapshot
	// RestoreCommand loads a snapshot file into the workspace.
	RestoreCommand = command.Restore
	// SubmitCommand runs another command as an asynchronous job.
	SubmitCommand = command.Submit
	// StatusCommand reports one job's state and accounting.
	StatusCommand = command.Status
	// WaitCommand blocks until a job finishes and yields its result.
	WaitCommand = command.Wait
	// CancelCommand stops a queued or running job.
	CancelCommand = command.Cancel
	// JobsCommand enumerates the scheduler's jobs.
	JobsCommand = command.Jobs
	// StatsCommand reports the serving system's live metrics snapshot —
	// read-only, answerable even draining or degraded, like ping.
	StatsCommand = command.Stats
)

// SolveMethod names a solver backend in a SolveCommand; the zero value
// selects the Cholesky baseline.
type SolveMethod = command.Method

// The solve methods by name.
const (
	SolveCholesky    = command.MethodCholesky
	SolveCholeskyRCM = command.MethodCholeskyRCM
	SolveCholeskyEnv = command.MethodCholeskyEnv
	SolveCG          = command.MethodCG
	SolveSOR         = command.MethodSOR
	SolveJacobi      = command.MethodJacobi
)

// SolvePrecond names a preconditioner in a SolveCommand; the zero value
// applies none.
type SolvePrecond = command.Precond

// DisplayKind selects what a Display command shows.
type DisplayKind = command.DisplayKind

// The display targets.
const (
	DisplayModel         = command.DisplayModel
	DisplayDisplacements = command.DisplayDisplacements
	DisplayStresses      = command.DisplayStresses
)

// ListKind selects what a ListCommand enumerates.
type ListKind = command.ListKind

// The list targets.
const (
	ListDB        = command.ListDB
	ListWorkspace = command.ListWorkspace
)

// The typed results, one per verb family; each String() renders the
// exact REPL display line.
type (
	// HelpResult is the command-language summary.
	HelpResult = command.HelpResult
	// PingResult renders "pong".
	PingResult = command.PingResult
	// VersionResult reports server name, release, and protocol revision.
	VersionResult = command.VersionResult
	// QuitResult accompanies ErrQuit on a clean shutdown.
	QuitResult = command.QuitResult
	// DefineResult reports a newly defined model.
	DefineResult = command.DefineResult
	// MaterialResult echoes the material now in effect.
	MaterialResult = command.MaterialResult
	// GenerateResult counts a generated mesh.
	GenerateResult = command.GenerateResult
	// NodeResult reports a new node's index and coordinates.
	NodeResult = command.NodeResult
	// ElementResult reports a new element's connectivity.
	ElementResult = command.ElementResult
	// FixResult reports a fixed node or dof.
	FixResult = command.FixResult
	// LoadSetResult reports a created load set.
	LoadSetResult = command.LoadSetResult
	// LoadResult reports an appended nodal load.
	LoadResult = command.LoadResult
	// EndLoadResult reports an applied grid edge load.
	EndLoadResult = command.EndLoadResult
	// SolveResult carries a solve's statistics and headline numbers.
	SolveResult = command.SolveResult
	// StressesResult carries the worst element stress.
	StressesResult = command.StressesResult
	// ModelInfoResult summarises a model's mesh.
	ModelInfoResult = command.ModelInfoResult
	// DisplacementsResult carries the displacement summary.
	DisplacementsResult = command.DisplacementsResult
	// StressSummaryResult summarises recovered stresses.
	StressSummaryResult = command.StressSummaryResult
	// StoreResult reports a completed database store.
	StoreResult = command.StoreResult
	// RetrieveResult reports a completed database retrieve.
	RetrieveResult = command.RetrieveResult
	// DeleteResult reports a completed database delete.
	DeleteResult = command.DeleteResult
	// ListResult enumerates a store's model names.
	ListResult = command.ListResult
	// SnapshotResult reports a written workspace snapshot.
	SnapshotResult = command.SnapshotResult
	// RestoreResult reports a restored workspace snapshot.
	RestoreResult = command.RestoreResult
	// SubmitResult reports a newly submitted job's id and state.
	SubmitResult = command.SubmitResult
	// JobStatusResult reports one job's state and accounting.
	JobStatusResult = command.JobStatusResult
	// JobsResult enumerates jobs; JobRow is one of its lines.
	JobsResult = command.JobsResult
	// JobRow is one line of a JobsResult.
	JobRow = command.JobRow
	// CancelResult reports a cancel attempt's outcome.
	CancelResult = command.CancelResult
	// StatsResult carries a metrics snapshot; StatEntry is one counter
	// or gauge, StatHistogram one latency histogram of StatBuckets.
	StatsResult   = command.StatsResult
	StatEntry     = command.StatEntry
	StatBucket    = command.StatBucket
	StatHistogram = command.StatHistogram
)

// The asynchronous job service — the concurrent multi-tenant front end.
// System.Jobs owns the scheduler; Session.SubmitAsync and the
// submit/status/wait/cancel/jobs verbs drive it.

// JobID identifies one submitted job.
type JobID = job.JobID

// JobState is a job's lifecycle state.
type JobState = job.State

// The job lifecycle states.
const (
	// JobQueued means the job is waiting for a worker or its model's
	// lock.
	JobQueued = job.Queued
	// JobRunning means a worker is executing the job.
	JobRunning = job.Running
	// JobDone means the job finished; its result is stored.
	JobDone = job.Done
	// JobFailed means the job's command returned an error.
	JobFailed = job.Failed
	// JobCancelled means the job was stopped before or during its run.
	JobCancelled = job.Cancelled
)

// JobStateName is a job state as the command language speaks it: the
// string form JobsCommand.State filters on and the job results render.
// JobState (the scheduler enum) and JobStateName correspond via
// JobState.String().
type JobStateName = command.JobState

// The job state names, for JobsCommand filters:
// fem2.JobsCommand{State: fem2.JobRunningName}.
const (
	JobQueuedName    = command.JobQueued
	JobRunningName   = command.JobRunning
	JobDoneName      = command.JobDone
	JobFailedName    = command.JobFailed
	JobCancelledName = command.JobCancelled
)

// JobScheduler is the system's job service: Submit/Wait/Status/Cancel/
// List over a bounded worker pool with per-model serialization.
type JobScheduler = job.Scheduler

// JobSnapshot is an immutable view of one job: state, stored result,
// and per-job ops/flops/cycles attribution.
type JobSnapshot = job.Snapshot

// JobFilter selects jobs for JobScheduler.List; zero fields match
// everything.
type JobFilter = job.Filter

// ErrSchedulerClosed is returned by Submit after the system closes.
var ErrSchedulerClosed = job.ErrClosed

// ErrJobQuota is returned by Submit when a tenant is at its in-flight
// job bound under the reject policy.
var ErrJobQuota = job.ErrQuota

// QuotaPolicy selects what Submit does when a tenant is at its
// in-flight job bound: fail fast or block for a slot.
type QuotaPolicy = job.QuotaPolicy

// The quota policies.
const (
	// QuotaReject fails an over-quota submission with ErrJobQuota.
	QuotaReject = job.QuotaReject
	// QuotaQueue blocks an over-quota submission until a slot frees.
	QuotaQueue = job.QuotaQueue
)

// The durable storage layer: a pluggable KV store under the model
// database and the job journal — see docs/storage.md for the key
// schema, encodings, and recovery semantics.

// Store is the KV storage interface every backend implements:
// Get/Put/Delete/Seek plus atomic Batch.
type Store = store.Store

// StoreConfig selects and parameterises a storage backend, in the
// spirit of a database DBConfiguration: Backend names it, Path locates
// a file-backed one.
type StoreConfig = store.Config

// The storage backend names.
const (
	// StoreMem is the in-memory backend — fast, empty at every start.
	StoreMem = store.BackendMem
	// StoreFile is the file-backed backend: a single append-only log
	// file with CRC-framed records, replayed and compacted on open.
	StoreFile = store.BackendFile
)

// OpenStore opens a configured storage backend directly — for tools
// that inspect or migrate a store outside a running system.
func OpenStore(cfg StoreConfig) (Store, error) { return store.Open(cfg) }

// ErrStoreDegraded reports a write refused because the store guard has
// degraded the system to read-only after persistent write failures.
// Remote clients see it through the degraded wire code; reads keep
// serving, and the guard's background probe re-arms writes when the
// backend recovers.  See docs/robustness.md.
var ErrStoreDegraded = store.ErrDegraded

// GuardOpts tunes the store degradation guard New installs between the
// backend and the cache: the consecutive-write-failure threshold, the
// recovery probe interval, and an optional health-transition hook.
// The zero value selects the defaults.
type GuardOpts = store.GuardOpts

// WithStoreGuard adjusts the degradation guard's thresholds and hooks.
func WithStoreGuard(g GuardOpts) Option { return func(o *options) { o.guard = g } }

// ResubmitPolicy bounds System.ResubmitLost's automatic requeue of
// jobs lost to a crash; the zero value resubmits nothing.
type ResubmitPolicy = job.ResubmitPolicy

// The network layer: fem2d serves a System over TCP (length-prefixed
// JSON frames carrying the typed command language — docs/protocol.md),
// and Client speaks the same typed Do surface back, rendering results
// byte-identically to local execution.

// Release is the FEM-2 software release the version verb reports.
const Release = command.Release

// ProtocolVersion is the wire protocol revision; client and server
// must agree exactly.
const ProtocolVersion = command.ProtocolVersion

// Server serves one System over TCP; see internal/server.
type Server = server.Server

// ServerConfig parameterises a Server: per-connection job quota,
// quota policy, default user, and logging.
type ServerConfig = server.Config

// NewServer builds a network front end over a system, installing the
// per-tenant quota on the system's scheduler.
func NewServer(sys *System, cfg ServerConfig) *Server { return server.New(sys, cfg) }

// ErrServerClosed is returned by Server.Serve after Shutdown.
var ErrServerClosed = server.ErrServerClosed

// Client is one connection to a fem2d daemon: the typed Do surface
// over the wire.
type Client = client.Client

// Dial connects to a fem2d daemon and completes the handshake as user.
func Dial(addr, user string) (*Client, error) { return client.Dial(addr, user) }

// ClientOptions tunes a client's resilience: reconnect budget,
// exponential backoff with seeded jitter, per-request deadlines, and a
// dialer hook.  The zero value is Dial's historical behaviour.
type ClientOptions = client.Options

// DialWithOptions connects with explicit resilience settings: with a
// positive MaxRetries the client redials dead connections and replays
// idempotent global verbs (ping, version, status, jobs, wait).
func DialWithOptions(addr, user string, o ClientOptions) (*Client, error) {
	return client.DialWithOptions(addr, user, o)
}

// ErrClientClosed is returned by Client.Do once the connection is gone
// for good.
var ErrClientClosed = client.ErrClientClosed

// ErrRetriesExhausted classifies a *RetryError: the client burned its
// whole reconnect budget without a successful round trip.
var ErrRetriesExhausted = client.ErrRetriesExhausted

// RetryError reports the request a client gave up on: total attempts
// plus the last underlying failure.
type RetryError = client.RetryError

// RemoteError is a server-reported failure: the server's error text
// verbatim, plus a wire code errors.Is maps back onto the shared
// sentinels.
type RemoteError = client.RemoteError

// JobEvent is one server-pushed job lifecycle notification.
type JobEvent = wire.JobEvent

// The observability layer: every System carries a registry of live
// counters, gauges, and latency histograms (System.Obs), updated
// lock-free by the instrumented layers.  System.StatsSnapshot and the
// stats verb read it point-in-time; a MetricsEmitter streams it as one
// JSON line per interval — the fem2/fem2d -metrics flag.  See
// docs/observability.md for the metric catalog and line format.

// ObsRegistry is a live metrics registry; System.Obs is the system's.
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time copy of a registry's metrics, sorted
// by name — what System.StatsSnapshot and the stats verb report.
type ObsSnapshot = obs.Snapshot

// NewObsRegistry builds an empty standalone registry — for clients
// that want reconnect/retry counters without a local System.
func NewObsRegistry() *ObsRegistry { return obs.New() }

// MetricsEmitter writes one JSON metrics line per tick; Start begins
// ticking, Stop flushes out.
type MetricsEmitter = obs.Emitter

// MetricsEmitterOpts parameterises a MetricsEmitter: the tick interval
// and the destination writer.
type MetricsEmitterOpts = obs.EmitterOpts

// NewMetricsEmitter builds an emitter over a registry.
func NewMetricsEmitter(reg *ObsRegistry, o MetricsEmitterOpts) *MetricsEmitter {
	return obs.NewEmitter(reg, o)
}

// MarshalCommand and UnmarshalCommand are the typed command wire
// codec; MarshalResult and UnmarshalResult the result codec.  Both
// directions are strict and round-trip to identical structs.
func MarshalCommand(cmd Command) ([]byte, error)    { return command.MarshalCommand(cmd) }
func UnmarshalCommand(data []byte) (Command, error) { return command.UnmarshalCommand(data) }
func MarshalResult(r Result) ([]byte, error)        { return command.MarshalResult(r) }
func UnmarshalResult(data []byte) (Result, error)   { return command.UnmarshalResult(data) }

// The shared error taxonomy.  Missing objects, malformed or ineligible
// requests, and cancelled contexts wrap these sentinels across auvm,
// fem, and core, so errors.Is classifies them uniformly (system-side
// failures — a session with no parallel machine attached, a solver
// breakdown — deliberately match none of them).
var (
	// ErrNotFound reports a named object that does not exist where the
	// operation looked for it.
	ErrNotFound = errs.ErrNotFound
	// ErrUsage reports a malformed request (unknown verb, bad
	// arguments, unknown option).
	ErrUsage = errs.ErrUsage
	// ErrCancelled reports a context cancelled or past its deadline
	// before the operation completed.
	ErrCancelled = errs.ErrCancelled
	// ErrQuit is the quit verb's sentinel; a REPL treats it as a clean
	// shutdown.
	ErrQuit = auvm.ErrQuit
	// ErrNoConvergence reports an iterative backend that exhausted its
	// budget; the concrete error is a *ConvergenceError.
	ErrNoConvergence = linalg.ErrNoConvergence
)

// ConvergenceError carries the final residual and iteration count of a
// solve that wrapped ErrNoConvergence.
type ConvergenceError = linalg.ConvergenceError

// LayerSpec is the design-time description of one virtual machine layer.
type LayerSpec = core.LayerSpec

// FEM2Layers returns the paper's four layer specifications, top first.
func FEM2Layers() []*LayerSpec { return core.FEM2Layers() }

// DesignIterator runs the design method's evaluate-adjust loop over a
// hardware design space.
type DesignIterator = core.DesignIterator

// Requirements is one simulated evaluation: processing, storage, and
// communication requirements plus makespan and utilization.
type Requirements = core.Requirements

// Model is a finite element structure/substructure model.
type Model = fem.Model

// LoadSet is a named set of applied nodal loads.
type LoadSet = fem.LoadSet

// Material carries element material and section properties.
type Material = fem.Material

// Solution is a solved load case.
type Solution = fem.Solution

// NewModel returns an empty model.
func NewModel(name string) *Model { return fem.NewModel(name) }

// Steel returns the default structural steel material.
func Steel() Material { return fem.Steel() }

// RectGridOpts parameterises the plane-stress grid generator.
type RectGridOpts = fem.RectGridOpts

// RectGrid generates a rectangular plane-stress model of CST elements.
func RectGrid(name string, o RectGridOpts) (*Model, error) { return fem.RectGrid(name, o) }

// CantileverTruss generates a triangulated cantilever truss of bar
// elements.
func CantileverTruss(name string, bays int, bayLen, height float64, mat Material) (*Model, error) {
	return fem.CantileverTruss(name, bays, bayLen, height, mat)
}

// SolveOpts selects and tunes the solution strategy for Solve: a solver
// Backend by registry name, an optional Precond for iterative backends,
// a Parallel worker count or Substructured band count, and the iterative
// Tol/MaxIter/Omega knobs.
type SolveOpts = fem.SolveOpts

// Solve assembles and solves a model/load set as SolveOpts directs —
// sequential, NAVM-distributed, or substructured — through the solver
// engine registry.  The zero SolveOpts runs the banded Cholesky
// baseline.  All paths honour ctx: a cancelled solve returns an error
// wrapping ErrCancelled.
func Solve(ctx context.Context, m *Model, ls *LoadSet, opts SolveOpts) (*Solution, error) {
	return fem.Solve(ctx, m, ls, opts)
}

// Assembled is a model's reduced global system: the free-dof stiffness
// matrix plus the dof maps needed to expand solutions back to the full
// grid.
type Assembled = fem.Assembled

// AssemblyWorkspace is the retained symbolic half of assembly: the
// sparsity pattern and scatter maps of one mesh topology, computed once
// and reused so every numeric re-assembly (new load step, moved nodes,
// another solver-comparison row) is an allocation-free scatter-add —
// sequential via Assemble or fanned over cores via AssembleParallel.
// It is distinct from Workspace, the AUVM user workspace.
type AssemblyWorkspace = fem.Workspace

// NewAssemblyWorkspace runs the symbolic assembly phase over a model.
// The topology (elements, connectivity, constraints) must stay fixed for
// the workspace's lifetime; node coordinates and materials may change
// between numeric assemblies.
func NewAssemblyWorkspace(m *Model) (*AssemblyWorkspace, error) { return fem.NewWorkspace(m) }

// Assemble builds the reduced global stiffness system of a model in one
// shot.  Callers that re-assemble one topology should retain a
// NewAssemblyWorkspace instead.
func Assemble(m *Model) (*Assembled, error) { return fem.Assemble(m) }

// SolveAssembled solves a pre-assembled system for one load set —
// assemble once, solve many.  opts routes exactly as in Solve, minus the
// substructured path (which performs its own condensation instead of a
// global assembly).
func SolveAssembled(ctx context.Context, m *Model, asm *Assembled, ls *LoadSet, opts SolveOpts) (*Solution, error) {
	return fem.SolveAssembled(ctx, m, asm, ls, opts)
}

// Stresses recovers element stresses from a solution.
func Stresses(m *Model, sol *Solution) ([][]float64, error) { return fem.Stresses(m, sol) }

// The factor-once direct-solve layer.  Direct solves through Solve,
// the REPL's solve verb, and the job service all consult a per-model
// FactorCache automatically: the first solve of a topology plans and
// factors, later solves of the unchanged model cost one triangular
// solve (Solution.Refactored / SolveResult.Refactored report which
// happened), and a model whose values changed is re-factored in place
// with no allocation.  The cache never trades correctness for reuse —
// a hit requires the assembled values to match the factored ones bit
// for bit, and cached solutions are bit-identical to cold solves.

// Factorization is a reusable direct factorisation: solve any number of
// right-hand sides, re-factor in place when values change.
type Factorization = linalg.Factorization

// DirectPlan is the symbolic state of a direct solve — ordering,
// band/envelope profile, preallocated storage — computed once per
// sparsity pattern and reused across factorisations.
type DirectPlan = linalg.DirectPlan

// PlanOpts selects a DirectPlan's ordering (natural or RCM) and factor
// storage (uniform band or skyline envelope).
type PlanOpts = linalg.PlanOpts

// The DirectPlan ordering and storage selections.
const (
	OrderNatural    = linalg.OrderNatural
	OrderRCM        = linalg.OrderRCM
	StorageBand     = linalg.StorageBand
	StorageEnvelope = linalg.StorageEnvelope
)

// NewDirectPlan runs the symbolic phase of a direct solve over a
// matrix's sparsity pattern; Refactor and SolveInto are the numeric
// phase.
func NewDirectPlan(a *linalg.CSR, opts PlanOpts) (*DirectPlan, error) {
	return linalg.NewDirectPlan(a, opts)
}

// FactorCache retains one DirectPlan per direct backend.  Models carry
// one (Model.Factors), the job scheduler keeps one per model name
// (JobScheduler.FactorCache), and Solve consults them automatically —
// reach for the type directly only to share factors across hand-built
// systems.
type FactorCache = linalg.FactorCache

// The solver backend registry names, usable as SolveOpts.Backend, as a
// SolveCommand.Method, and in the REPL's `solve ... method <name>`.
const (
	// BackendCholesky is sequential banded Cholesky — the baseline.
	BackendCholesky = linalg.BackendCholesky
	// BackendCholeskyRCM is banded Cholesky after RCM renumbering.
	BackendCholeskyRCM = linalg.BackendCholeskyRCM
	// BackendCholeskyEnv is envelope (skyline) Cholesky after RCM: each
	// row pays its own profile instead of the worst row's bandwidth.
	BackendCholeskyEnv = linalg.BackendCholeskyEnv
	// BackendCG is (optionally preconditioned) conjugate gradients.
	BackendCG = linalg.BackendCG
	// BackendJacobi is Jacobi iteration.
	BackendJacobi = linalg.BackendJacobi
	// BackendSOR is successive over-relaxation.
	BackendSOR = linalg.BackendSOR
)

// The preconditioner registry names, usable as SolveOpts.Precond and in
// the REPL's `solve ... precond <name>`.
const (
	// PrecondJacobi is diagonal scaling.
	PrecondJacobi = linalg.PrecondJacobi
	// PrecondSSOR is the symmetric SOR preconditioner.
	PrecondSSOR = linalg.PrecondSSOR
)

// Backends returns the registered solver backend names, sorted.
func Backends() []string { return linalg.Backends() }

// Preconds returns the registered preconditioner names, sorted.
func Preconds() []string { return linalg.Preconds() }

// Runtime is the NAVM parallel runtime bound to a simulated machine.
type Runtime = navm.Runtime

// TaskCtx is a running NAVM task's handle: task control, windows,
// broadcast, remote calls, and parallel linear algebra.
type TaskCtx = navm.TaskCtx

// Window grants access to a rectangular region of another task's array.
type Window = navm.Window

// DistSystem is a row-partitioned linear system with its halo
// communication plan.
type DistSystem = navm.DistSystem

// Partition splits a sparse system into P contiguous row blocks.
func Partition(a *linalg.CSR, b linalg.Vector, p int) (*DistSystem, error) {
	return navm.Partition(a, b, p)
}

// Table is one experiment's printable result.
type Table = exp.Table

// RunAllExperiments regenerates every experiment table (E1-E11 plus the
// design-method iteration) with default parameters.
func RunAllExperiments() ([]*Table, error) { return exp.RunAll() }

// Grammar is a formal H-graph grammar defining a class of data objects.
type Grammar = hgraph.Grammar

// AllLevelGrammars returns the formal grammars of every specified VM
// level.
func AllLevelGrammars() map[string]*Grammar { return hgraph.AllLevelGrammars() }

// Level identifies a virtual machine layer in metrics and traces.
type Level = metrics.Level

// The four layers, top-down.
const (
	LevelAUVM = metrics.LevelAUVM
	LevelNAVM = metrics.LevelNAVM
	LevelSPVM = metrics.LevelSPVM
	LevelARCH = metrics.LevelARCH
)
