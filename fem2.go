// Package fem2 is the public API of the FEM-2 reproduction: a complete
// implementation of the system designed in "The FEM-2 Design Method"
// (Pratt, Adams, Mehrotra, Van Rosendale, Voigt, Patrick; NASA CR-172197
// / ICASE 83-41, 1983).
//
// FEM-2 is a parallel computer for structural analysis by finite element
// methods, designed top-down as four layers of virtual machine, each
// formally specified with H-graph semantics:
//
//	AUVM — the application user's machine (interactive command language,
//	       model database, workspaces),
//	NAVM — the numerical analyst's machine (tasks, windows on arrays,
//	       forall/pardo, broadcast, remote procedure call, parallel
//	       linear algebra),
//	SPVM — the system programmer's machine (the seven task messages,
//	       activation records, ready queues, a variable-size-block heap),
//	ARCH — the hardware (clusters of PEs around shared memories, joined
//	       by a communication network, one kernel PE per cluster).
//
// The hardware was never fabricated; per the paper's own method it is
// evaluated by simulation.  NewSystem builds the whole stack over a
// simulated machine; Session gives an interactive workstation; the
// experiment runners regenerate the paper's evaluation (see DESIGN.md and
// EXPERIMENTS.md).
//
// Quick start:
//
//	sys, _ := fem2.NewSystem(fem2.DefaultConfig())
//	s := sys.Session("engineer")
//	s.Execute("generate grid wing 16 8 16 8 clamp-left")
//	s.Execute("load wing cruise endload 0 -1000")
//	out, _ := s.Execute("solve wing cruise parallel 8")
//	fmt.Println(out)
package fem2

import (
	"repro/internal/arch"
	"repro/internal/auvm"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fem"
	"repro/internal/hgraph"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
)

// Config describes a FEM-2 hardware configuration: cluster count, PEs per
// cluster, shared memory size, and the network/memory/kernel cost model.
type Config = arch.Config

// DefaultConfig returns the baseline 4-cluster × 8-PE machine.
func DefaultConfig() Config { return arch.DefaultConfig() }

// System is a complete FEM-2 instance: simulated hardware, per-cluster
// kernels, the NAVM runtime, the shared model database, user sessions,
// and machine-wide instrumentation.
type System = core.System

// NewSystem builds the full four-layer stack over a hardware
// configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Session is one interactive workstation user: a workspace, the shared
// database, and the command interpreter.
type Session = auvm.Session

// Workspace holds a user's local models, load sets, solutions, and
// stresses.
type Workspace = auvm.Workspace

// Database is the long-term shared model store.
type Database = auvm.Database

// LayerSpec is the design-time description of one virtual machine layer.
type LayerSpec = core.LayerSpec

// FEM2Layers returns the paper's four layer specifications, top first.
func FEM2Layers() []*LayerSpec { return core.FEM2Layers() }

// DesignIterator runs the design method's evaluate-adjust loop over a
// hardware design space.
type DesignIterator = core.DesignIterator

// Requirements is one simulated evaluation: processing, storage, and
// communication requirements plus makespan and utilization.
type Requirements = core.Requirements

// Model is a finite element structure/substructure model.
type Model = fem.Model

// LoadSet is a named set of applied nodal loads.
type LoadSet = fem.LoadSet

// Material carries element material and section properties.
type Material = fem.Material

// Solution is a solved load case.
type Solution = fem.Solution

// NewModel returns an empty model.
func NewModel(name string) *Model { return fem.NewModel(name) }

// Steel returns the default structural steel material.
func Steel() Material { return fem.Steel() }

// RectGridOpts parameterises the plane-stress grid generator.
type RectGridOpts = fem.RectGridOpts

// RectGrid generates a rectangular plane-stress model of CST elements.
func RectGrid(name string, o RectGridOpts) (*Model, error) { return fem.RectGrid(name, o) }

// CantileverTruss generates a triangulated cantilever truss of bar
// elements.
func CantileverTruss(name string, bays int, bayLen, height float64, mat Material) (*Model, error) {
	return fem.CantileverTruss(name, bays, bayLen, height, mat)
}

// Solve solves a model/load set with a sequential method.
func Solve(m *Model, ls *LoadSet, method fem.Method) (*Solution, error) {
	return fem.Solve(m, ls, method)
}

// Stresses recovers element stresses from a solution.
func Stresses(m *Model, sol *Solution) ([][]float64, error) { return fem.Stresses(m, sol) }

// Solution methods re-exported from the fem package.
const (
	MethodCholesky = fem.MethodCholesky
	MethodCG       = fem.MethodCG
	MethodJacobi   = fem.MethodJacobi
	MethodSOR      = fem.MethodSOR
)

// Runtime is the NAVM parallel runtime bound to a simulated machine.
type Runtime = navm.Runtime

// TaskCtx is a running NAVM task's handle: task control, windows,
// broadcast, remote calls, and parallel linear algebra.
type TaskCtx = navm.TaskCtx

// Window grants access to a rectangular region of another task's array.
type Window = navm.Window

// DistSystem is a row-partitioned linear system with its halo
// communication plan.
type DistSystem = navm.DistSystem

// Partition splits a sparse system into P contiguous row blocks.
func Partition(a *linalg.CSR, b linalg.Vector, p int) (*DistSystem, error) {
	return navm.Partition(a, b, p)
}

// Table is one experiment's printable result.
type Table = exp.Table

// RunAllExperiments regenerates every experiment table (E1-E11 plus the
// design-method iteration) with default parameters.
func RunAllExperiments() ([]*Table, error) { return exp.RunAll() }

// Grammar is a formal H-graph grammar defining a class of data objects.
type Grammar = hgraph.Grammar

// AllLevelGrammars returns the formal grammars of every specified VM
// level.
func AllLevelGrammars() map[string]*Grammar { return hgraph.AllLevelGrammars() }

// Level identifies a virtual machine layer in metrics and traces.
type Level = metrics.Level

// The four layers, top-down.
const (
	LevelAUVM = metrics.LevelAUVM
	LevelNAVM = metrics.LevelNAVM
	LevelSPVM = metrics.LevelSPVM
	LevelARCH = metrics.LevelARCH
)
