// Formal specification in action: H-graph semantics as the FEM-2 design
// method uses it.  This example prints the formal grammar of the system
// programmer's VM message formats, builds the H-graph model of a live
// message, validates it, demonstrates that a corrupted message is
// rejected, and runs an H-graph transform under its formal pre- and
// post-conditions.
package main

import (
	"fmt"
	"log"

	"repro/internal/hgraph"
	"repro/internal/spvm"
)

func main() {
	// 1. The formal definition of the seven SPVM message types.
	g := hgraph.SPVMMessageGrammar()
	fmt.Println(g)

	// 2. A live runtime message, modeled as an H-graph and validated
	// against the grammar.
	msg := &spvm.Message{
		Type: spvm.MsgInitiate, TaskType: "cg-worker",
		Replications: 16, Parent: 1, Params: []float64{64, 1e-8},
	}
	model := msg.ToHGraph()
	fmt.Println("H-graph model of a live initiate message:")
	fmt.Println(model)
	if errs := g.Validate(model); len(errs) == 0 {
		fmt.Println("message conforms to the formal specification ✓")
	} else {
		log.Fatalf("live message rejected: %v", errs)
	}

	// 3. Corrupt the message: the grammar catches it.
	model.Entry().Arc("replications", model.AddAtom("bad", hgraph.Str("sixteen")))
	errs := g.Validate(model)
	fmt.Printf("\nafter corrupting 'replications' to a string: %d violation(s)\n", len(errs))
	for _, e := range errs {
		fmt.Println("  ", e)
	}

	// 4. Operations are H-graph transforms with formal pre/post
	// conditions.  A transform that doubles an initiate message's
	// replication count must map grammar-valid inputs to grammar-valid
	// outputs; the interpreter enforces both directions.
	reg := hgraph.NewRegistry("spvm-ops")
	reg.Register(&hgraph.Transform{
		Name: "double-replications",
		In:   g,
		Out:  g,
		Doc:  "double the replication count of an initiate message",
		Body: func(in *hgraph.Graph, ip *hgraph.Interp) (*hgraph.Graph, error) {
			n := in.Path("replications")
			n.SetAtom(hgraph.Int(n.Atom.I * 2))
			return in, nil
		},
	})
	ip := hgraph.NewInterp(reg)
	out, err := ip.Invoke("double-replications", msg.ToHGraph())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransform applied: replications %d -> %d (post-condition checked)\n",
		msg.Replications, out.Path("replications").Atom.I)
	fmt.Println("transform call hierarchy:")
	fmt.Print(ip.CallTree())
}
