// The FEM-2 design method itself: the paper's primary contribution.  This
// example walks the method's three steps: (1) print the top-down layer
// specifications, (2) validate them against their formal H-graph
// grammars, and (3) iterate the hardware design against a representative
// workload until the proper match of hardware and software organizations
// is found.
package main

import (
	"context"
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	// Step 1: the four layers of virtual machine, top-down.
	fmt.Println("=== FEM-2 layers of virtual machine (top-down) ===")
	for _, layer := range fem2.FEM2Layers() {
		fmt.Println(layer)
	}

	// Step 2: each layer is formally specified; the specs must be
	// well-formed before the design can "firm up".
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ValidateDesign(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== all layer specifications validate against their grammars ✓ ===")

	// Step 3: iterate the hardware design.  The workload is the upper
	// layers' requirement: an engineer's parallel plate solve.
	workload := func(sys *fem2.System) error {
		s := sys.Session("engineer")
		for _, c := range []fem2.Command{
			fem2.GenerateGrid{Name: "plate", NX: 16, NY: 8, W: 16, H: 8, ClampLeft: true},
			fem2.EndLoad{Model: "plate", Set: "tip", FY: -1000},
			fem2.SolveCommand{Model: "plate", Set: "tip", Parallel: 8},
		} {
			if _, err := s.Do(context.Background(), c); err != nil {
				return err
			}
		}
		return nil
	}
	var candidates []fem2.Config
	for _, clusters := range []int{1, 2, 4, 8} {
		cfg := fem2.DefaultConfig()
		cfg.Clusters = clusters
		cfg.PEsPerCluster = 5
		candidates = append(candidates, cfg)
	}
	it := &fem2.DesignIterator{Candidates: candidates, Workload: workload}
	best, history, err := it.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== design iteration history ===")
	fmt.Printf("%-6s %-9s %-13s %-12s %-12s %-6s\n",
		"iter", "clusters", "PEs/cluster", "makespan", "utilization", "best")
	for _, h := range history {
		mark := ""
		if h.Best {
			mark = "*"
		}
		fmt.Printf("%-6d %-9d %-13d %-12d %-12.3f %-6s\n",
			h.Iteration, h.Req.Config.Clusters, h.Req.Config.PEsPerCluster,
			h.Req.Makespan, h.Req.Utilization, mark)
	}
	fmt.Printf("\nselected configuration: %d clusters × %d PEs "+
		"(makespan %d cycles, %d network messages, %d words of storage)\n",
		best.Config.Clusters, best.Config.PEsPerCluster,
		best.Makespan, best.Messages, best.StorageWords)
}
