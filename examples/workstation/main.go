// Workstation scripting: drives the AUVM command interpreter through an
// embedded script, exactly as cmd/fem2 -script would — including building
// a truss by hand (define structure / node / element / fix), the workflow
// the paper's application user's VM enumerates operation by operation.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	fem2 "repro"
)

const script = `
# A hand-built king-post truss, N/mm units.
define structure kingpost
material 200000 0.3 10 2000
node kingpost 0 0
node kingpost 2000 0
node kingpost 4000 0
node kingpost 2000 1500
element bar kingpost 0 1
element bar kingpost 1 2
element bar kingpost 0 3
element bar kingpost 2 3
element bar kingpost 1 3
fix node kingpost 0
fix dof kingpost 5
# 50 kN hanging at mid-span (dof 3 = node 1, y).
load kingpost deck 3 -50000
solve kingpost deck method cholesky
stresses kingpost
display model kingpost
display displacements kingpost
display stresses kingpost
store kingpost
list db
list workspace
quit
`

func main() {
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	s := sys.Session("drafter")
	fmt.Println("FEM-2 scripted workstation session:")
	fmt.Println(strings.Repeat("-", 50))
	if err := s.Run(strings.NewReader(script), os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Repeat("-", 50))
	fmt.Printf("session issued %d AUVM operations\n",
		sys.Metrics.Get(fem2.LevelAUVM, "ops"))
}
