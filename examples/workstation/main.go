// Workstation scripting: drives the AUVM command language through an
// embedded script — including building a truss by hand (define structure
// / node / element / fix), the workflow the paper's application user's
// VM enumerates operation by operation.  Instead of handing the script
// to Session.Run, this example walks the adapter the REPL itself is
// built from: Parse each line into its typed Command, interpret it with
// Do, and render the typed Result — showing the shell is nothing but a
// thin text layer over the typed API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	fem2 "repro"
)

const script = `
# A hand-built king-post truss, N/mm units.
define structure kingpost
material 200000 0.3 10 2000
node kingpost 0 0
node kingpost 2000 0
node kingpost 4000 0
node kingpost 2000 1500
element bar kingpost 0 1
element bar kingpost 1 2
element bar kingpost 0 3
element bar kingpost 2 3
element bar kingpost 1 3
fix node kingpost 0
fix dof kingpost 5
# 50 kN hanging at mid-span (dof 3 = node 1, y).
load kingpost deck 3 -50000
solve kingpost deck method cholesky
stresses kingpost
display model kingpost
display displacements kingpost
display stresses kingpost
store kingpost
list db
list workspace
quit
`

func main() {
	sys, err := fem2.New()
	if err != nil {
		log.Fatal(err)
	}
	s := sys.Session("drafter")
	ctx := context.Background()
	fmt.Println("FEM-2 scripted workstation session:")
	fmt.Println(strings.Repeat("-", 50))
	for _, line := range strings.Split(script, "\n") {
		cmd, err := fem2.Parse(line)
		if err != nil {
			log.Fatalf("%q: %v", line, err)
		}
		if cmd == nil { // blank line or comment
			continue
		}
		res, err := s.Do(ctx, cmd)
		if res != nil {
			fmt.Println(res)
		}
		if errors.Is(err, fem2.ErrQuit) {
			break
		}
		if err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
	}
	fmt.Println(strings.Repeat("-", 50))
	fmt.Printf("session issued %d AUVM operations\n",
		sys.Metrics.Get(fem2.LevelAUVM, "ops"))
}
