// Substructure analysis: the paper's second level of parallelism —
// "parallelism in the substructure analysis of a larger structure".  A
// long plate is split into vertical bands; each band's interior unknowns
// are condensed onto the interface in parallel on distinct PEs, the small
// interface system is solved, and the interiors are recovered.  The
// result matches the direct solve to machine precision.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/fem"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/trace"
)

func main() {
	// A slender structure: 32×6 cells of plane-stress elements,
	// clamped at the left, sheared at the tip.
	o := fem.RectGridOpts{NX: 32, NY: 6, W: 3200, H: 600, Mat: fem.Steel(), ClampLeft: true}
	model, err := fem.RectGrid("fuselage-panel", o)
	if err != nil {
		log.Fatal(err)
	}
	load := fem.EndLoad("gust", o, 0, -20000)

	// Reference: the sequential banded Cholesky solve.
	ref, err := fem.Solve(context.Background(), model, load, fem.SolveOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d nodes, %d elements, %d dofs\n",
		len(model.Nodes), len(model.Elements), model.NumDOF())

	fmt.Printf("%-6s %-14s %-12s %-12s %-10s\n",
		"bands", "iface.dofs", "makespan", "net.msgs", "max.err")
	for _, k := range []int{1, 2, 4, 8} {
		sub, err := fem.PartitionByX(model, k)
		if err != nil {
			log.Fatal(err)
		}
		cfg := arch.DefaultConfig()
		cfg.Clusters = 4
		cfg.PEsPerCluster = 4
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), trace.NewCapped(4096))
		sol, err := fem.SolveSubstructured(context.Background(), model, sub, load, rt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-14d %-12d %-12d %-10.2e\n",
			k, len(sub.Interface), rt.Machine().Makespan(),
			rt.Machine().Network().TotalMessages(),
			linalg.MaxAbsDiff(sol.U, ref.U))
	}
	fmt.Println("\ncondensations of independent bands overlap on distinct PEs;")
	fmt.Println("the interface solve is the serial tail that bounds the speedup.")
}
