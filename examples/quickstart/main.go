// Quickstart: build a FEM-2 system, solve a plane-stress cantilever plate
// in parallel on the simulated machine, and recover stresses — the
// end-to-end path a structural engineer takes through the application
// user's virtual machine, driven through the typed command API.
package main

import (
	"context"
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	// A 4-cluster machine with 8 PEs per cluster (1 kernel + 7 workers
	// each), the baseline FEM-2 configuration.
	sys, err := fem2.New(fem2.WithClusters(4), fem2.WithPEsPerCluster(8))
	if err != nil {
		log.Fatal(err)
	}
	engineer := sys.Session("engineer")
	ctx := context.Background()

	// The AUVM operations as typed commands: generate a grid, load it,
	// solve it on 8 parallel workers, recover stresses, and file the
	// model in the shared database.  Each command renders its canonical
	// command line, and each typed result renders the REPL display line.
	commands := []fem2.Command{
		fem2.GenerateGrid{Name: "wing-panel", NX: 16, NY: 8, W: 1600, H: 800, ClampLeft: true},
		fem2.EndLoad{Model: "wing-panel", Set: "cruise", FY: -12000},
		fem2.SolveCommand{Model: "wing-panel", Set: "cruise", Parallel: 8},
		fem2.StressesCommand{Model: "wing-panel"},
		fem2.Display{What: fem2.DisplayDisplacements, Model: "wing-panel"},
		fem2.Display{What: fem2.DisplayStresses, Model: "wing-panel"},
		fem2.StoreCommand{Model: "wing-panel"},
		fem2.ListCommand{What: fem2.ListDB},
	}
	for _, cmd := range commands {
		res, err := engineer.Do(ctx, cmd)
		if err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
		fmt.Printf("fem2> %s\n%s\n", cmd, res)
	}

	// Typed results carry their numbers as fields — no output parsing.
	res, err := engineer.Do(ctx, fem2.SolveCommand{Model: "wing-panel", Set: "cruise", Parallel: 8})
	if err != nil {
		log.Fatal(err)
	}
	sr := res.(*fem2.SolveResult)
	fmt.Printf("--- typed access: %d CG iterations, %d halo words, makespan %d cycles, |u|max %.4g at dof %d\n",
		sr.Iterations, sr.HaloWords, sr.Makespan, sr.MaxDisp, sr.MaxDOF)

	// The same solve is visible at every level of the stack: the
	// simulated machine reports its cost.
	fmt.Println("--- simulated machine ---")
	fmt.Print(sys.Machine.Report())
	fmt.Println("--- per-level requirements ---")
	fmt.Print(sys.Metrics.Report())
}
