// Quickstart: build a FEM-2 system, solve a plane-stress cantilever plate
// in parallel on the simulated machine, and recover stresses — the
// end-to-end path a structural engineer takes through the application
// user's virtual machine.
package main

import (
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	// A 4-cluster machine with 8 PEs per cluster (1 kernel + 7 workers
	// each), the baseline FEM-2 configuration.
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	engineer := sys.Session("engineer")

	// The AUVM command language: generate a grid, load it, solve it on
	// 8 parallel workers, recover stresses, and file the model in the
	// shared database.
	commands := []string{
		"generate grid wing-panel 16 8 1600 800 clamp-left",
		"load wing-panel cruise endload 0 -12000",
		"solve wing-panel cruise parallel 8",
		"stresses wing-panel",
		"display displacements wing-panel",
		"display stresses wing-panel",
		"store wing-panel",
		"list db",
	}
	for _, cmd := range commands {
		out, err := engineer.Execute(cmd)
		if err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
		fmt.Printf("fem2> %s\n%s\n", cmd, out)
	}

	// The same solve is visible at every level of the stack: the
	// simulated machine reports its cost.
	fmt.Println("--- simulated machine ---")
	fmt.Print(sys.Machine.Report())
	fmt.Println("--- per-level requirements ---")
	fmt.Print(sys.Metrics.Report())
}
