// Multi-user operation: the paper's top level of parallelism —
// "parallelism in user requests for simultaneous solution of several
// independent problems" — plus the "provide multi-user access" hardware
// requirement.  Several engineers share one FEM-2 machine and one model
// database; their independent solves overlap through the asynchronous
// job service, and models flow between users through the database.
// Each user drives the typed command API, the request surface a
// multi-user front end serves.
package main

import (
	"context"
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	// 4 clusters × 8 PEs, with a 4-worker job scheduler in front.
	sys, err := fem2.New(fem2.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	// Four engineers, four independent problems on one machine.  Model
	// building is cheap and synchronous; the solves are heavy, so each
	// session submits its solve as a job and all four run concurrently
	// on the worker pool (distinct models never serialize).
	users := []string{"alice", "bob", "chen", "dana"}
	ids := make([]fem2.JobID, len(users))
	for i, u := range users {
		s := sys.Session(u)
		model := fmt.Sprintf("panel-%s", u)
		for _, c := range []fem2.Command{
			fem2.GenerateGrid{Name: model, NX: 12, NY: 8, W: 1200, H: 800, ClampLeft: true},
			fem2.EndLoad{Model: model, Set: "op", FY: float64(-1000 * (i + 1))},
		} {
			if _, err := s.Do(ctx, c); err != nil {
				log.Fatalf("%s: %s: %v", u, c, err)
			}
		}
		id, err := s.SubmitAsync(ctx, fem2.SolveCommand{Model: model, Set: "op", Parallel: 4})
		if err != nil {
			log.Fatalf("%s: submit: %v", u, err)
		}
		ids[i] = id
		fmt.Printf("%s submitted %s\n", u, id)
	}

	// The jobs verb shows the shared scheduler's view of all four.
	out, err := sys.Session("alice").Execute("jobs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Wait for every solve, then store the results; per-job attribution
	// (flops, AUVM ops) comes back on the job snapshots.
	for i, u := range users {
		s := sys.Session(u)
		res, err := sys.Jobs.Wait(ctx, ids[i])
		if err != nil {
			log.Fatalf("%s: %s: %v", u, ids[i], err)
		}
		if _, err := s.Do(ctx, fem2.StoreCommand{Model: fmt.Sprintf("panel-%s", u)}); err != nil {
			log.Fatal(err)
		}
		snap, _ := sys.Jobs.Status(ids[i])
		fmt.Printf("%s: %v  [%d flops]\n", u, res, snap.Flops)
	}

	// The solves shared the machine: utilization stays high because
	// each solve's workers landed on the least-loaded PEs.
	fmt.Printf("\nshared machine after %d concurrent solves:\n", len(users))
	fmt.Print(sys.Machine.Report())

	// The database is the shared data path: dana reviews alice's model.
	dana := sys.Session("dana")
	res, err := dana.Do(ctx, fem2.RetrieveCommand{Name: "panel-alice"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	res, err = dana.Do(ctx, fem2.SolveCommand{Model: "panel-alice", Set: "op", Method: "cholesky"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dana re-checked alice's panel sequentially:", res)
}
