// Multi-user operation: the paper's top level of parallelism —
// "parallelism in user requests for simultaneous solution of several
// independent problems" — plus the "provide multi-user access" hardware
// requirement.  Several engineers share one FEM-2 machine and one model
// database; their independent solves overlap across the machine's
// clusters, and models flow between users through the database.
package main

import (
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	cfg := fem2.DefaultConfig() // 4 clusters × 8 PEs
	sys, err := fem2.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Four engineers, four independent problems on one machine.
	users := []string{"alice", "bob", "chen", "dana"}
	for i, u := range users {
		s := sys.Session(u)
		model := fmt.Sprintf("panel-%s", u)
		cmds := []string{
			fmt.Sprintf("generate grid %s 12 8 1200 800 clamp-left", model),
			fmt.Sprintf("load %s op endload 0 -%d", model, 1000*(i+1)),
			fmt.Sprintf("solve %s op parallel 4", model),
			fmt.Sprintf("store %s", model),
		}
		for _, c := range cmds {
			if _, err := s.Execute(c); err != nil {
				log.Fatalf("%s: %s: %v", u, c, err)
			}
		}
		fmt.Printf("%s solved and stored %s\n", u, model)
	}

	// The solves shared the machine: utilization stays high because
	// each solve's workers landed on the least-loaded PEs.
	fmt.Printf("\nshared machine after %d independent solves:\n", len(users))
	fmt.Print(sys.Machine.Report())

	// The database is the shared data path: dana reviews alice's model.
	dana := sys.Session("dana")
	out, err := dana.Execute("retrieve panel-alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	out, err = dana.Execute("solve panel-alice op method cholesky")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dana re-checked alice's panel sequentially:", out)
}
