// Multi-user operation: the paper's top level of parallelism —
// "parallelism in user requests for simultaneous solution of several
// independent problems" — plus the "provide multi-user access" hardware
// requirement.  Several engineers share one FEM-2 machine and one model
// database; their independent solves overlap across the machine's
// clusters, and models flow between users through the database.  Each
// user drives the typed command API, the request surface a multi-user
// front end would serve.
package main

import (
	"context"
	"fmt"
	"log"

	fem2 "repro"
)

func main() {
	sys, err := fem2.New() // 4 clusters × 8 PEs, the baseline machine
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Four engineers, four independent problems on one machine.
	users := []string{"alice", "bob", "chen", "dana"}
	for i, u := range users {
		s := sys.Session(u)
		model := fmt.Sprintf("panel-%s", u)
		cmds := []fem2.Command{
			fem2.GenerateGrid{Name: model, NX: 12, NY: 8, W: 1200, H: 800, ClampLeft: true},
			fem2.EndLoad{Model: model, Set: "op", FY: float64(-1000 * (i + 1))},
			fem2.SolveCommand{Model: model, Set: "op", Parallel: 4},
			fem2.StoreCommand{Model: model},
		}
		for _, c := range cmds {
			if _, err := s.Do(ctx, c); err != nil {
				log.Fatalf("%s: %s: %v", u, c, err)
			}
		}
		fmt.Printf("%s solved and stored %s\n", u, model)
	}

	// The solves shared the machine: utilization stays high because
	// each solve's workers landed on the least-loaded PEs.
	fmt.Printf("\nshared machine after %d independent solves:\n", len(users))
	fmt.Print(sys.Machine.Report())

	// The database is the shared data path: dana reviews alice's model.
	dana := sys.Session("dana")
	res, err := dana.Do(ctx, fem2.RetrieveCommand{Name: "panel-alice"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	res, err = dana.Do(ctx, fem2.SolveCommand{Model: "panel-alice", Set: "op", Method: "cholesky"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dana re-checked alice's panel sequentially:", res)
}
